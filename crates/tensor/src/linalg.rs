//! Dense linear-algebra kernels: matrix multiplication, matrix-vector
//! products, transposition and outer products.
//!
//! Every kernel exists in three forms that share one implementation, so the
//! numeric result is bit-identical whichever entry point is used:
//!
//! * a raw slice kernel (`matmul_slices`, …) writing into a caller-provided
//!   buffer — the allocation-free form used by the simulation workspace;
//! * an `_into` variant (`matmul_into`, …) operating on [`Tensor`]s but
//!   reusing the caller's output `Vec` (cleared and resized, capacity kept);
//! * the original allocating function (`matmul`, …), now a thin wrapper that
//!   allocates a fresh output and delegates to the `_into` variant.
//!
//! Since the SIMD layer landed, every slice kernel delegates to the
//! runtime-dispatched implementation in [`crate::simd`] on the process-wide
//! [`crate::simd::active_backend`].  The reductions follow the canonical
//! lane-blocked order documented there (ascending 8-wide column blocks,
//! fixed lane tree, sequential tail), which is **the same bits on every
//! backend** — scalar, SSE2 or AVX2.

use crate::simd::{self, active_backend};
use crate::{Result, Tensor, TensorError};

/// Raw kernel behind [`matmul`]: multiplies `a (m x k)` by `b (k x n)` into
/// `out (m x n)`, overwriting it.
///
/// Runs in `ikj` order (vectorised over output columns, which preserves the
/// per-element operation order exactly), skipping exact-zero entries of `a`
/// — a bitwise no-op, see [`matmul_sparse_slices`].
///
/// # Panics
/// Asserts the slice lengths before touching any data.
pub fn matmul_slices(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    simd::matmul_slices_with(active_backend(), a, m, k, b, n, out);
}

/// Raw kernel behind [`matvec`]: multiplies `a (m x n)` by `x (n)` into
/// `out (m)`, overwriting it, reducing each row in the canonical
/// lane-blocked order (see [`crate::simd`]).
///
/// # Panics
/// Asserts the slice lengths before touching any data.
pub fn matvec_slices(a: &[f32], m: usize, n: usize, x: &[f32], out: &mut [f32]) {
    simd::matvec_slices_with(active_backend(), a, m, n, x, out);
}

/// Raw kernel behind [`transpose`]: writes the transpose of `a (m x n)` into
/// `out (n x m)`, overwriting it.
///
/// # Panics
/// Debug-asserts the slice lengths; callers validate shapes.
pub fn transpose_slices(a: &[f32], m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
}

/// Dense sibling of [`matvec_sparse_slices`]: computes
/// `out[i] = (bias[i] + 0.0) + Σ_j a[i,j]·x[j]` over **all** columns in the
/// canonical lane-blocked order, with the bias canonicalised (`-0.0` becomes
/// `+0.0` — the signed-zero corner of the sparse/dense bit-identity
/// contract; see the `seed_from_bias` notes in [`crate::simd`]'s kernels)
/// and added to the reduced sum.
///
/// # Panics
/// Asserts the slice lengths before touching any data.
pub fn matvec_bias_slices(a: &[f32], m: usize, n: usize, x: &[f32], bias: &[f32], out: &mut [f32]) {
    simd::matvec_bias_slices_with(active_backend(), a, m, n, x, bias, out);
}

/// Sparsity-aware matrix–vector product: computes
/// `out[i] = (bias[i] + 0.0) + Σ_j a[i,j]·x[j]` while touching only the
/// `active` columns, scatter-accumulating each product into its canonical
/// lane `j % 8` (`active` must hold the **ascending** indices of the
/// nonzero entries of `x`, without duplicates).
///
/// A skipped column contributes only terms `a[i,j] · (±0.0)` to lane
/// accumulators seeded `+0.0`; an IEEE-754 add can only produce `-0.0` from
/// two `-0.0` operands, so those lanes can never be `-0.0` and every
/// skipped term is a bitwise no-op.  The result is therefore
/// **bit-identical** to [`matvec_bias_slices`] whenever `active` contains
/// every `j` with `x[j] != 0.0` and the matrix is finite.  Cost is
/// `O(m·|active|)` instead of `O(m·n)`.
///
/// # Panics
/// Asserts the slice lengths and that `active` indices are in range before
/// touching any data.
pub fn matvec_sparse_slices(
    a: &[f32],
    m: usize,
    n: usize,
    x: &[f32],
    active: &[u32],
    bias: &[f32],
    out: &mut [f32],
) {
    simd::matvec_sparse_slices_with(active_backend(), a, m, n, x, active, bias, out);
}

/// Sparsity-aware matrix product with a per-column bias: computes
/// `out[i,j] = (bias[j] + 0.0) + Σ_k a[i,k]·b[k,j]`, skipping every
/// exact-zero `a[i,k]` entry, so cost is `O(nnz(a)·n + m·n)` instead of
/// `O(m·k·n)`.
///
/// The accumulators are seeded from the canonicalised bias (`b_j + 0.0`);
/// skipped terms contribute `(±0.0)·b[k,j] ∈ {+0.0, -0.0}` and are
/// therefore bitwise no-ops by the same argument as
/// [`matvec_sparse_slices`] (given finite `b`).  An empty `bias` means "no
/// bias" (all accumulators seed from `+0.0`), in which case this is
/// exactly [`matmul_slices`].
///
/// # Panics
/// Asserts the slice lengths before touching any data (the bias must have
/// length `n`; use [`matmul_slices`] for the unbiased product).
pub fn matmul_sparse_slices(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    if bias.is_empty() {
        simd::matmul_slices_with(active_backend(), a, m, k, b, n, out);
    } else {
        simd::matmul_sparse_slices_with(active_backend(), a, m, k, b, n, bias, out);
    }
}

/// [`matvec_sparse_slices`] over tensors into a reusable buffer: clears
/// `out`, resizes it to `m` (keeping its capacity) and writes
/// `(bias + 0.0) + a[:, active]·x[active]`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] for
/// invalid operands or an out-of-range active index.
pub fn matvec_sparse_into(
    a: &Tensor,
    x: &Tensor,
    active: &[u32],
    bias: &Tensor,
    out: &mut Vec<f32>,
) -> Result<()> {
    ensure_rank(a, 2, "matvec_sparse")?;
    ensure_rank(x, 1, "matvec_sparse")?;
    ensure_rank(bias, 1, "matvec_sparse")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n || bias.len() != m || active.iter().any(|&j| (j as usize) >= n) {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec_sparse",
        });
    }
    matvec_sparse_slices(
        a.as_slice(),
        m,
        n,
        x.as_slice(),
        active,
        bias.as_slice(),
        reuse(out, m),
    );
    Ok(())
}

/// [`matmul_sparse_slices`] over tensors into a reusable buffer: clears
/// `out`, resizes it to `m·n` (keeping its capacity) and writes the
/// bias-seeded product, skipping exact-zero entries of `a`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] for
/// invalid operands (the bias must be empty or of length `n`).
pub fn matmul_sparse_into(a: &Tensor, b: &Tensor, bias: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "matmul_sparse")?;
    ensure_rank(b, 2, "matmul_sparse")?;
    let (m, k1) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k1 != k2 || !(bias.is_empty() || bias.len() == n) {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul_sparse",
        });
    }
    matmul_sparse_slices(
        a.as_slice(),
        m,
        k1,
        b.as_slice(),
        n,
        bias.as_slice(),
        reuse(out, m * n),
    );
    Ok(())
}

fn reuse(buffer: &mut Vec<f32>, len: usize) -> &mut [f32] {
    buffer.clear();
    buffer.resize(len, 0.0);
    buffer
}

/// [`matmul`] into a reusable buffer: clears `out`, resizes it to `m·n`
/// (keeping its capacity) and writes the product.
///
/// # Errors
/// Same as [`matmul`].
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "matmul")?;
    ensure_rank(b, 2, "matmul")?;
    let (m, k1) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k1 != k2 {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
            op: "matmul",
        });
    }
    matmul_slices(a.as_slice(), m, k1, b.as_slice(), n, reuse(out, m * n));
    Ok(())
}

/// [`matvec`] into a reusable buffer: clears `out`, resizes it to `m`
/// (keeping its capacity) and writes the product.
///
/// # Errors
/// Same as [`matvec`].
pub fn matvec_into(a: &Tensor, x: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "matvec")?;
    ensure_rank(x, 1, "matvec")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
            op: "matvec",
        });
    }
    matvec_slices(a.as_slice(), m, n, x.as_slice(), reuse(out, m));
    Ok(())
}

/// [`transpose`] into a reusable buffer: clears `out`, resizes it to `m·n`
/// (keeping its capacity) and writes the transpose.
///
/// # Errors
/// Same as [`transpose`].
pub fn transpose_into(a: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    ensure_rank(a, 2, "transpose")?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    transpose_slices(a.as_slice(), m, n, reuse(out, m * n));
    Ok(())
}

/// Multiplies two rank-2 tensors: `(m x k) · (k x n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// ```
/// use nrsnn_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), nrsnn_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    matmul_into(a, b, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[0], b.dims()[1]])
}

/// Multiplies a rank-2 matrix `(m x n)` by a rank-1 vector of length `n`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] for
/// invalid operands.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    matvec_into(a, x, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[0]])
}

/// Transposes a rank-2 tensor.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let mut out = Vec::new();
    transpose_into(a, &mut out)?;
    Tensor::from_vec(out, &[a.dims()[1], a.dims()[0]])
}

/// Outer product of two rank-1 tensors: `(m) ⊗ (n) -> (m x n)`.
///
/// # Errors
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 1.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    ensure_rank(a, 1, "outer")?;
    ensure_rank(b, 1, "outer")?;
    let (m, n) = (a.len(), b.len());
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = av[i] * bv[j];
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn ensure_rank(t: &Tensor, rank: usize, op: &'static str) -> Result<()> {
    if t.shape().rank() != rank {
        return Err(TensorError::RankMismatch {
            expected: rank,
            actual: t.shape().rank(),
            op,
        });
    }
    Ok(())
}

impl Tensor {
    /// Matrix multiplication; see [`matmul`].
    ///
    /// # Errors
    /// Same as [`matmul`].
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        matmul(self, other)
    }

    /// Matrix transposition; see [`transpose`].
    ///
    /// # Errors
    /// Same as [`transpose`].
    pub fn transpose(&self) -> Result<Tensor> {
        transpose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let i = Tensor::eye(3);
        let c = matmul(&a, &i).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_inner_dim_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_known_values() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]).unwrap();
        let x = Tensor::from_slice(&[3.0, 4.0]);
        let y = matvec(&a, &x).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]).unwrap(), 6.0);
        let tt = transpose(&t).unwrap();
        assert_eq!(tt, a);
    }

    #[test]
    fn outer_product() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0, 5.0]);
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn rank_checks() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let m = Tensor::zeros(&[2, 2]);
        assert!(matmul(&v, &m).is_err());
        assert!(matvec(&v, &v).is_err());
        assert!(transpose(&v).is_err());
        assert!(outer(&m, &v).is_err());
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let a = Tensor::from_vec(vec![1.0, -2.5, 0.0, 4.0, 0.125, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 1.0, -1.0, 2.0, 3.0, -0.75], &[3, 2]).unwrap();
        let x = Tensor::from_slice(&[1.5, -0.5, 2.0]);

        let mut buf = vec![9.0f32; 1]; // dirty, wrongly sized: must be reset
        matmul_into(&a, &b, &mut buf).unwrap();
        assert_eq!(buf, matmul(&a, &b).unwrap().into_vec());

        matvec_into(&a, &x, &mut buf).unwrap();
        assert_eq!(buf, matvec(&a, &x).unwrap().into_vec());

        transpose_into(&a, &mut buf).unwrap();
        assert_eq!(buf, transpose(&a).unwrap().into_vec());
    }

    #[test]
    fn into_variants_reuse_capacity() {
        let a = Tensor::eye(4);
        let mut buf = Vec::with_capacity(64);
        matmul_into(&a, &a, &mut buf).unwrap();
        let cap = buf.capacity();
        matmul_into(&a, &a, &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf, Tensor::eye(4).into_vec());
    }

    #[test]
    fn into_variants_validate_shapes() {
        let v = Tensor::from_slice(&[1.0, 2.0]);
        let m = Tensor::zeros(&[2, 3]);
        let mut buf = Vec::new();
        assert!(matmul_into(&m, &m, &mut buf).is_err());
        assert!(matvec_into(&m, &m, &mut buf).is_err());
        assert!(matvec_into(&m, &Tensor::from_slice(&[1.0]), &mut buf).is_err());
        assert!(transpose_into(&v, &mut buf).is_err());
    }

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    fn active_indices(x: &[f32]) -> Vec<u32> {
        x.iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(j, _)| j as u32)
            .collect()
    }

    #[test]
    fn sparse_matvec_is_bit_identical_to_dense_bias_seeded() {
        // Mixed magnitudes, negative weights and exact zeros (both signs) in
        // the input: the skipped terms cover +0.0 and -0.0 contributions.
        let a = Tensor::from_vec(
            vec![
                1.5, -2.25, 0.5, -0.75, 3.0, -1.0, 0.125, 2.0, -0.5, 1.0, -4.0, 0.25,
            ],
            &[3, 4],
        )
        .unwrap();
        let xs: Vec<Vec<f32>> = vec![
            vec![0.3, 0.0, -1.2, 0.0],
            vec![0.0, -0.0, 0.0, -0.0], // all-zero input: result must be exactly the seed
            vec![1e-20, 0.0, -1e-20, 2.0],
            vec![0.5, 0.25, 0.125, 1.0], // fully dense input
        ];
        let biases = [
            vec![0.1f32, -0.2, 0.0],
            vec![-0.0f32, -0.0, -0.0], // the signed-zero corner
            vec![0.0f32, 0.0, 0.0],
        ];
        for x in &xs {
            let active = active_indices(x);
            for bias in &biases {
                let mut dense = vec![9.0f32; 3];
                let mut sparse = vec![-9.0f32; 3];
                matvec_bias_slices(a.as_slice(), 3, 4, x, bias, &mut dense);
                matvec_sparse_slices(a.as_slice(), 3, 4, x, &active, bias, &mut sparse);
                assert_eq!(bits(&dense), bits(&sparse), "x {x:?} bias {bias:?}");
            }
        }
    }

    #[test]
    fn negative_zero_bias_is_canonicalised_identically_on_both_paths() {
        // With a raw -0.0 seed the dense kernel's first skipped +0.0 term
        // would flip the accumulator to +0.0 while the sparse kernel kept
        // -0.0; seed_from_bias canonicalises the seed so both return +0.0.
        let a = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let x = [0.0f32, 0.0];
        let bias = [-0.0f32];
        let mut dense = [f32::NAN];
        let mut sparse = [f32::NAN];
        matvec_bias_slices(a.as_slice(), 1, 2, &x, &bias, &mut dense);
        matvec_sparse_slices(a.as_slice(), 1, 2, &x, &[], &bias, &mut sparse);
        assert_eq!(dense[0].to_bits(), 0.0f32.to_bits());
        assert_eq!(sparse[0].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn sparse_matmul_is_bit_identical_to_dense_scan_with_bias() {
        // Reference: seed each output row from the bias, then add every term
        // (no zero skip) in the same ikj order.
        let dense_reference = |a: &[f32], m: usize, k: usize, b: &[f32], n: usize, bias: &[f32]| {
            let mut out = vec![0.0f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    out[i * n + j] = if bias.is_empty() { 0.0 } else { bias[j] + 0.0 };
                }
                for kk in 0..k {
                    for j in 0..n {
                        out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                    }
                }
            }
            out
        };
        let a = vec![
            0.0, 1.5, -0.0, 2.0, -3.0, 0.0, 0.0, -0.0, 0.5, 0.0, 0.25, -1.0,
        ];
        let b = vec![1.0, -2.0, 0.5, 3.0, -0.25, 4.0, 2.0, -1.5];
        for bias in [vec![], vec![0.1f32, -0.0], vec![-0.5f32, 2.0]] {
            let mut out = vec![7.0f32; 6];
            matmul_sparse_slices(&a, 3, 4, &b, 2, &bias, &mut out);
            let reference = dense_reference(&a, 3, 4, &b, 2, &bias);
            assert_eq!(bits(&out), bits(&reference), "bias {bias:?}");
        }
    }

    #[test]
    fn sparse_into_wrappers_validate_and_match_slices() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_slice(&[0.5, 0.0, -1.0]);
        let bias = Tensor::from_slice(&[0.25, -0.5]);
        let mut out = Vec::new();
        matvec_sparse_into(&a, &x, &[0, 2], &bias, &mut out).unwrap();
        let mut reference = vec![0.0f32; 2];
        matvec_bias_slices(
            a.as_slice(),
            2,
            3,
            x.as_slice(),
            bias.as_slice(),
            &mut reference,
        );
        assert_eq!(bits(&out), bits(&reference));

        // Out-of-range active index, wrong bias width, wrong ranks.
        assert!(matvec_sparse_into(&a, &x, &[3], &bias, &mut out).is_err());
        assert!(matvec_sparse_into(&a, &x, &[0], &x, &mut out).is_err());
        assert!(matvec_sparse_into(&x, &x, &[0], &bias, &mut out).is_err());

        let b = Tensor::from_vec(vec![1.0, 0.0, -1.0, 2.0, 0.5, 1.5], &[3, 2]).unwrap();
        let col_bias = Tensor::from_slice(&[1.0, -1.0]);
        matmul_sparse_into(&a, &b, &col_bias, &mut out).unwrap();
        let mut reference = vec![0.0f32; 4];
        matmul_sparse_slices(
            a.as_slice(),
            2,
            3,
            b.as_slice(),
            2,
            col_bias.as_slice(),
            &mut reference,
        );
        assert_eq!(bits(&out), bits(&reference));
        assert!(matmul_sparse_into(&a, &a, &col_bias, &mut out).is_err());
        assert!(matmul_sparse_into(&a, &b, &bias, &mut out).is_ok()); // len-2 bias fits n=2
        assert!(matmul_sparse_into(&a, &b, &x, &mut out).is_err()); // len-3 bias does not
    }

    #[test]
    fn matmul_matvec_agree() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = Tensor::from_slice(&[1.0, -1.0, 2.0]);
        let via_matvec = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[3, 1]).unwrap();
        let via_matmul = matmul(&a, &xm).unwrap();
        assert_eq!(via_matvec.as_slice(), via_matmul.as_slice());
    }
}
