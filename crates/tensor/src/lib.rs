//! # nrsnn-tensor
//!
//! A small, dependency-light dense `f32` tensor library used as the numeric
//! substrate of the NRSNN reproduction (DNN training, DNN-to-SNN conversion
//! and spiking simulation all operate on these tensors).
//!
//! The crate intentionally implements only what the rest of the workspace
//! needs: n-dimensional row-major tensors, elementwise arithmetic, matrix
//! multiplication, 2-D convolution/pooling helpers (`im2col`/`col2im`) and
//! random initialisers.
//!
//! ## Example
//!
//! ```
//! use nrsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), nrsnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod conv;
mod error;
mod init;
mod linalg;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{col2im, im2col, im2col_into, im2col_slices, Conv2dGeometry, Pool2dGeometry};
pub use error::TensorError;
pub use init::{he_normal, uniform, xavier_uniform};
pub use linalg::{
    matmul, matmul_into, matmul_slices, matmul_sparse_into, matmul_sparse_slices, matvec,
    matvec_bias_slices, matvec_into, matvec_slices, matvec_sparse_into, matvec_sparse_slices,
    outer, transpose, transpose_into, transpose_slices,
};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
