use std::fmt;

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The shape (dimension sizes) of a [`crate::Tensor`], stored row-major.
///
/// ```
/// use nrsnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// A rank-0 (scalar) shape with a single element.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank does not
    /// match or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let strides = self.strides();
        Ok(index.iter().zip(&strides).map(|(i, s)| i * s).sum())
    }

    /// Returns `true` if this shape describes a matrix (rank 2).
    pub fn is_matrix(&self) -> bool {
        self.rank() == 2
    }

    /// Returns `true` if this shape describes a vector (rank 1).
    pub fn is_vector(&self) -> bool {
        self.rank() == 1
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(&[3, 4]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 6);
        assert_eq!(s.offset(&[2, 3]).unwrap(), 11);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[3, 4]);
        assert!(s.offset(&[3, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
    }

    #[test]
    fn len_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[0, 5]).len(), 0);
        assert!(Shape::new(&[0, 5]).is_empty());
    }
}
