//! Random weight initialisers.
//!
//! All functions take the RNG by mutable reference so experiments remain
//! reproducible under a caller-controlled seed.

use rand::Rng;

use crate::Tensor;

/// Uniformly distributed tensor in `[low, high)`.
///
/// ```
/// use nrsnn_tensor::uniform;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = uniform(&mut rng, &[4, 4], -1.0, 1.0);
/// assert!(t.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
/// ```
pub fn uniform<R: Rng>(rng: &mut R, shape: &[usize], low: f32, high: f32) -> Tensor {
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len).map(|_| rng.gen_range(low..high)).collect();
    Tensor::from_vec(data, shape).expect("uniform: internally consistent shape")
}

/// Xavier/Glorot uniform initialisation for a dense layer with `fan_in`
/// inputs and `fan_out` outputs: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -a, a)
}

/// He (Kaiming) normal initialisation suited for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn he_normal<R: Rng>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|_| sample_standard_normal(rng) * std)
        .collect();
    Tensor::from_vec(data, shape).expect("he_normal: internally consistent shape")
}

/// Samples a standard normal variate via the Box–Muller transform (avoids a
/// dependency on `rand_distr`).
pub(crate) fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[100], -0.5, 0.5);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            uniform(&mut a, &[10], 0.0, 1.0).as_slice(),
            uniform(&mut b, &[10], 0.0, 1.0).as_slice()
        );
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, &[1000], 1000, 1000);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn he_normal_has_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = he_normal(&mut rng, &[5000], 100);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 5000.0;
        // target variance is 2/100 = 0.02
        assert!(
            (var - 0.02).abs() < 0.005,
            "variance {var} too far from 0.02"
        );
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
