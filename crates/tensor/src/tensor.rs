use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// All DNN activations, weights and converted SNN parameters in the
/// workspace are stored as `Tensor`s.
///
/// ```
/// use nrsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), nrsnn_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` does not
    /// equal the number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let shape = Shape::new(shape);
        if data.len() != shape.len() {
            return Err(TensorError::ShapeDataMismatch {
                elements: data.len(),
                expected: shape.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying data in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying data in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads a single element.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes a single element.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reuses this tensor as a zero-filled tensor of the given shape,
    /// keeping the underlying buffer's capacity, and returns the data for
    /// in-place filling.  This is the allocation-reusing primitive behind
    /// the into-buffer forward paths.
    pub fn reset_zeroed(&mut self, dims: &[usize]) -> &mut [f32] {
        let shape = Shape::new(dims);
        self.data.clear();
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape holding the same number of
    /// elements.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(shape);
        if new_shape.len() != self.len() {
            return Err(TensorError::ShapeDataMismatch {
                elements: self.len(),
                expected: new_shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "zip_map",
            });
        }
        Ok(Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise division.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "add_scaled_inplace",
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in row-major order (0 for empty tensors).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0
    }

    /// The `q`-th percentile (0.0–100.0) of all elements, using
    /// nearest-rank interpolation. Returns 0.0 for empty tensors.
    ///
    /// This is used by the DNN-to-SNN conversion for robust activation
    /// normalisation (e.g. the 99.9th percentile).
    pub fn percentile(&self, q: f32) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f32> = self.data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = q.clamp(0.0, 100.0);
        let rank = (q / 100.0 * (sorted.len() - 1) as f32).round() as usize;
        sorted[rank]
    }

    /// Returns the `row`-th row of a rank-2 tensor as a new rank-1 tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2, or
    /// [`TensorError::IndexOutOfBounds`] if the row is out of range.
    pub fn row(&self, row: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "row",
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![row],
                shape: self.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data[row * cols..(row + 1) * cols].to_vec(),
            shape: Shape::new(&[cols]),
        })
    }

    /// Borrows the `row`-th row of a rank-2 tensor as a slice — the
    /// allocation-free sibling of [`Tensor::row`], used by the batched
    /// simulation engine to stream samples out of a dataset tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2, or
    /// [`TensorError::IndexOutOfBounds`] if the row is out of range.
    pub fn row_slice(&self, row: usize) -> Result<&[f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
                op: "row_slice",
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if row >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![row],
                shape: self.dims().to_vec(),
            });
        }
        Ok(&self.data[row * cols..(row + 1) * cols])
    }

    /// Stacks rank-1 tensors of equal length into a rank-2 tensor
    /// (`rows.len() x len`).
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] if the rows have differing
    /// lengths, or [`TensorError::InvalidGeometry`] if `rows` is empty.
    pub fn stack_rows(rows: &[Tensor]) -> Result<Tensor> {
        let first = rows.first().ok_or_else(|| {
            TensorError::InvalidGeometry("stack_rows requires at least one row".to_string())
        })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    lhs: vec![cols],
                    rhs: vec![r.len()],
                    op: "stack_rows",
                });
            }
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

// Hand-written (de)serialization over the shim serde data model (the derive
// on `Tensor` is a no-op under the offline shims — see shims/README.md).
// Format: `{"shape": [d0, d1, ..], "data": [..]}`.
impl Serialize for Tensor {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("shape".to_string(), self.shape.dims().to_value()),
            ("data".to_string(), self.data.to_value()),
        ])
    }
}

impl Deserialize for Tensor {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let shape_value = value
            .get("shape")
            .ok_or_else(|| serde::DeError::new("tensor is missing \"shape\""))?;
        let data_value = value
            .get("data")
            .ok_or_else(|| serde::DeError::new("tensor is missing \"data\""))?;
        let dims = Vec::<usize>::from_value(shape_value)?;
        let data = Vec::<f32>::from_value(data_value)?;
        Tensor::from_vec(data, &dims).map_err(|e| serde::DeError::new(e.to_string()))
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        assert_eq!(t.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 0.0);
        assert_eq!(t.sum(), 3.0);
    }

    #[test]
    fn get_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(t.sum(), 2.5);
        assert_eq!(t.mean(), 0.625);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn percentile_basic() {
        let t = Tensor::from_slice(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(t.percentile(0.0), 0.0);
        assert_eq!(t.percentile(100.0), 10.0);
        assert_eq!(t.percentile(50.0), 5.0);
    }

    #[test]
    fn reset_zeroed_reshapes_and_keeps_capacity() {
        let mut t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let cap = t.data.capacity();
        let data = t.reset_zeroed(&[2, 2]);
        assert_eq!(data, &[0.0; 4]);
        data[3] = 7.0;
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.get(&[1, 1]).unwrap(), 7.0);
        assert!(t.data.capacity() >= 4 && cap >= t.data.capacity());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(1).unwrap().as_slice(), &[4.0, 5.0, 6.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn row_slice_borrows_without_copying() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row_slice(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row_slice(1).unwrap(), t.row(1).unwrap().as_slice());
        assert!(t.row_slice(2).is_err());
        assert!(Tensor::from_slice(&[1.0]).row_slice(0).is_err());
    }

    #[test]
    fn stack_rows_round_trip() {
        let rows = vec![
            Tensor::from_slice(&[1.0, 2.0]),
            Tensor::from_slice(&[3.0, 4.0]),
        ];
        let m = Tensor::stack_rows(&rows).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(1).unwrap().as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn stack_rows_rejects_ragged() {
        let rows = vec![Tensor::from_slice(&[1.0, 2.0]), Tensor::from_slice(&[3.0])];
        assert!(Tensor::stack_rows(&rows).is_err());
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled_inplace(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.set(&[1], f32::NAN).unwrap();
        assert!(t.has_non_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert!(!format!("{t}").is_empty());
    }
}
