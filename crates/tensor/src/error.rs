use std::error::Error;
use std::fmt;

/// Error type returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    ShapeDataMismatch {
        /// Number of elements provided.
        elements: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two tensors had incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// The tensor did not have the expected rank (number of dimensions).
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A geometry parameter (kernel size, stride, padding) was invalid.
    InvalidGeometry(String),
    /// The `NRSNN_SIMD` backend override held an unrecognised value (see
    /// [`crate::simd::parse_override`]).
    InvalidSimdOverride(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { elements, expected } => write!(
                f,
                "data has {elements} elements but shape requires {expected}"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "{op} expects rank {expected}, got rank {actual}"),
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidSimdOverride(value) => write!(
                f,
                "invalid NRSNN_SIMD value {value:?}: expected scalar, sse2, avx2 or auto"
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_data_mismatch() {
        let err = TensorError::ShapeDataMismatch {
            elements: 3,
            expected: 4,
        };
        assert_eq!(err.to_string(), "data has 3 elements but shape requires 4");
    }

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4, 5],
            op: "matmul",
        };
        assert!(err.to_string().contains("matmul"));
        assert!(err.to_string().contains("[2, 3]"));
    }

    #[test]
    fn display_invalid_simd_override() {
        let err = TensorError::InvalidSimdOverride("avx512".to_string());
        let msg = err.to_string();
        assert!(msg.contains("NRSNN_SIMD"));
        assert!(msg.contains("avx512"));
        assert!(msg.contains("scalar"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
