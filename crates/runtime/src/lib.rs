//! # nrsnn-runtime
//!
//! The parallel execution substrate of the NRSNN reproduction: a std-only,
//! dependency-free scoped thread pool with work stealing, plus deterministic
//! per-task seed derivation.
//!
//! The paper's evaluation (Figs. 2–4, 6–8, Tables I–II) is an embarrassingly
//! parallel `(coding × noise level × sample)` grid of independent SNN
//! simulations.  This crate supplies the two ingredients needed to run that
//! grid on all cores *without changing a single result bit*:
//!
//! * [`parallel_map`] / [`try_parallel_map`] — a fork-join map over a slice.
//!   Task batches are pre-distributed round-robin over per-worker deques;
//!   idle workers steal from the back of their peers' deques, so uneven task
//!   costs (deep CNN points next to cheap MLP points) still load-balance.
//!   Results are reassembled **by task index**, so the output order never
//!   depends on scheduling.
//! * [`WorkerPool`] — the *service* counterpart of the scoped pool: named,
//!   long-lived worker threads that park on the caller's own queue and join
//!   (with panic propagation) at shutdown.  The inference server in
//!   `nrsnn-serve` runs its dynamic batcher on one of these.
//! * [`derive_seed`] — a SplitMix64-style mix of a master seed and a task
//!   index.  Giving every task its own derived RNG stream (instead of
//!   threading one RNG through all tasks serially) is what makes the
//!   parallel and serial paths bit-identical.
//!
//! Thread count and batch size are controlled by [`ParallelConfig`]; a
//! [`ParallelConfig::auto`] configuration honours the `NRSNN_THREADS`
//! environment variable.
//!
//! ## Example: a deterministic parallel sweep
//!
//! ```
//! use nrsnn_runtime::{derive_seed, parallel_map, ParallelConfig};
//!
//! // Any per-task computation that seeds its randomness through
//! // `derive_seed` is invariant to the worker count ...
//! let tasks: Vec<u64> = (0..64).collect();
//! let run = |cfg: &ParallelConfig| {
//!     parallel_map(cfg, &tasks, |index, &task| {
//!         derive_seed(42, index as u64).wrapping_add(task)
//!     })
//! };
//!
//! // ... so one worker and four workers produce identical output.
//! let serial = run(&ParallelConfig::serial());
//! let parallel = run(&ParallelConfig::with_threads(4));
//! assert_eq!(serial, parallel);
//! ```
//!
//! ## Fallible tasks
//!
//! ```
//! use nrsnn_runtime::{try_parallel_map, ParallelConfig};
//!
//! let items = [2u32, 4, 5, 6];
//! let result: Result<Vec<u32>, String> =
//!     try_parallel_map(&ParallelConfig::with_threads(2), &items, |_, &x| {
//!         if x % 2 == 0 {
//!             Ok(x / 2)
//!         } else {
//!             Err(format!("{x} is odd"))
//!         }
//!     });
//! // The lowest-indexed failure is reported, regardless of which worker
//! // hit it first.
//! assert_eq!(result, Err("5 is odd".to_string()));
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod config;
mod pool;
mod seed;
mod service;

pub use config::{ParallelConfig, DEFAULT_BATCH_SIZE, THREADS_ENV_VAR};
pub use pool::{parallel_map, parallel_map_init, try_parallel_map, try_parallel_map_init};
pub use seed::derive_seed;
pub use service::WorkerPool;
