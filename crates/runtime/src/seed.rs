//! Deterministic per-task seed derivation.

/// Derives an independent RNG seed for task `task` from `master`.
///
/// The mix is two rounds of the SplitMix64 finalizer over the pair, so
/// nearby task indices (0, 1, 2, …) land on statistically unrelated seeds
/// while the mapping stays a pure function of `(master, task)` — the
/// property that makes a parallel sweep reproduce the serial sweep exactly:
/// task *i* draws from the same stream no matter which worker runs it, or
/// when.
///
/// ```
/// use nrsnn_runtime::derive_seed;
///
/// // Pure and stable across calls ...
/// assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
/// // ... but decorrelated across both arguments.
/// assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
/// assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
/// assert_ne!(derive_seed(42, 0), derive_seed(0, 42));
/// ```
pub fn derive_seed(master: u64, task: u64) -> u64 {
    // Weyl-sequence offset keeps task 0 from passing `master` through
    // unchanged; the constants are the SplitMix64 reference constants.
    let mut z = master.wrapping_add(task.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seeds_are_unique_over_a_large_task_range() {
        let mut seen = HashSet::new();
        for task in 0..10_000u64 {
            assert!(seen.insert(derive_seed(2021, task)), "collision at {task}");
        }
    }

    #[test]
    fn different_masters_give_disjoint_streams() {
        let a: HashSet<u64> = (0..1000).map(|t| derive_seed(1, t)).collect();
        let b: HashSet<u64> = (0..1000).map(|t| derive_seed(2, t)).collect();
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn task_zero_does_not_leak_the_master() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(12345, 0), 12345);
    }

    #[test]
    fn bits_are_well_spread() {
        // Cheap avalanche sanity check: over 64 consecutive tasks every bit
        // position flips at least once.
        let mut ones = 0u64;
        let mut zeros = 0u64;
        for task in 0..64 {
            let s = derive_seed(7, task);
            ones |= s;
            zeros |= !s;
        }
        assert_eq!(ones, u64::MAX);
        assert_eq!(zeros, u64::MAX);
    }
}
