//! Thread-count and batching configuration for the executor.

/// Default number of consecutive tasks handed to a worker at once.
///
/// Sweep tasks (one SNN inference each) are milliseconds-scale, so small
/// batches keep stealing granular without measurable scheduling overhead.
pub const DEFAULT_BATCH_SIZE: usize = 8;

/// Environment variable consulted by [`ParallelConfig::auto`] (and any other
/// configuration with `threads = 0`) to fix the worker count.
///
/// Its sibling knob is `NRSNN_SIMD` (`nrsnn_tensor::simd::SIMD_ENV_VAR`),
/// which selects the kernel backend the same way this variable selects
/// parallelism; neither setting can change a single result bit, only
/// throughput. They differ in one deliberate way: an unparsable
/// `NRSNN_THREADS` falls through to hardware detection (a thread count is a
/// tuning hint), while an unknown `NRSNN_SIMD` value is a typed error (a
/// backend name is an enumerated contract, and a typo silently running
/// scalar would be a 2x performance bug nobody notices).
pub const THREADS_ENV_VAR: &str = "NRSNN_THREADS";

/// How a parallel map distributes its tasks.
///
/// `threads = 0` means "auto": the [`THREADS_ENV_VAR`] environment variable
/// if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].  An explicit positive `threads`
/// always wins over the environment, which keeps tests and benches pinned to
/// the worker count they ask for.
///
/// Changing either field never changes *what* is computed — the executor
/// reassembles results by task index and tasks derive their own seeds — only
/// how the work is spread over cores.
///
/// ```
/// use nrsnn_runtime::ParallelConfig;
///
/// assert_eq!(ParallelConfig::serial().effective_threads(), 1);
/// assert_eq!(ParallelConfig::with_threads(3).effective_threads(), 3);
/// assert!(ParallelConfig::auto().effective_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    /// Number of worker threads; `0` resolves via `NRSNN_THREADS`, then
    /// the machine's available parallelism.
    pub threads: usize,
    /// Number of consecutive task indices per scheduled batch (minimum 1).
    pub batch_size: usize,
}

impl ParallelConfig {
    /// Auto-detected thread count (env var, then hardware) with the default
    /// batch size.
    pub fn auto() -> Self {
        ParallelConfig {
            threads: 0,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Single-threaded execution: the reference path every parallel run must
    /// reproduce bit for bit.
    pub fn serial() -> Self {
        ParallelConfig {
            threads: 1,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// An explicit worker count (ignores `NRSNN_THREADS`).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Sets the batch size (builder style); values below 1 are clamped.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The worker count this configuration resolves to right now.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(n) = env_threads() {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig::auto()
    }
}

fn env_threads() -> Option<usize> {
    let value = std::env::var(THREADS_ENV_VAR).ok()?;
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_threads_win_over_everything() {
        assert_eq!(ParallelConfig::with_threads(7).effective_threads(), 7);
        assert_eq!(ParallelConfig::serial().effective_threads(), 1);
    }

    #[test]
    fn auto_resolves_to_at_least_one_worker() {
        assert!(ParallelConfig::auto().effective_threads() >= 1);
        assert_eq!(ParallelConfig::default(), ParallelConfig::auto());
    }

    #[test]
    fn batch_size_is_clamped_to_one() {
        assert_eq!(ParallelConfig::auto().with_batch_size(0).batch_size, 1);
        assert_eq!(ParallelConfig::auto().with_batch_size(32).batch_size, 32);
    }

    #[test]
    fn env_parsing_rejects_garbage() {
        // `env_threads` is exercised indirectly; garbage values must fall
        // through to hardware detection rather than panic.  We only check
        // the parser here to avoid mutating process-global state in tests.
        assert_eq!("4".trim().parse::<usize>().ok().filter(|&n| n > 0), Some(4));
        assert_eq!("zero".trim().parse::<usize>().ok().filter(|&n| n > 0), None);
        assert_eq!("0".trim().parse::<usize>().ok().filter(|&n| n > 0), None);
    }
}
