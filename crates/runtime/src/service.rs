//! Long-lived worker pools for services.
//!
//! The fork-join executor in [`crate::parallel_map`] spawns scoped workers
//! per call, which is the right shape for batch sweeps but not for a
//! *service*: an inference server needs worker threads that outlive any one
//! request, park on a queue, and shut down gracefully when the service
//! stops.  [`WorkerPool`] is that lifecycle hook — it owns named OS threads
//! running a caller-supplied body and joins them on demand, propagating
//! worker panics to the joiner so failures cannot disappear silently.
//!
//! The pool itself is queue-agnostic: the body is expected to block on the
//! caller's own synchronisation (typically a `Mutex`/`Condvar` queue) and to
//! return when the service signals shutdown.

use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A set of long-lived named worker threads.
///
/// Unlike the scoped fork-join pool, the workers own their closure
/// (`'static`) and live until the body returns — the intended shape is
/// "loop on a shared queue until a shutdown flag is raised".
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use nrsnn_runtime::WorkerPool;
///
/// let hits = Arc::new(AtomicUsize::new(0));
/// let pool = {
///     let hits = Arc::clone(&hits);
///     WorkerPool::spawn("demo", 3, move |_worker| {
///         hits.fetch_add(1, Ordering::SeqCst);
///     })
///     .expect("spawn workers")
/// };
/// assert_eq!(pool.threads(), 3);
/// pool.join();
/// assert_eq!(hits.load(Ordering::SeqCst), 3);
/// ```
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one) named `label-<index>`, each
    /// running `body(index)` until it returns.
    ///
    /// # Errors
    /// Returns the OS error if a thread cannot be spawned; workers spawned
    /// before the failure are detached and drain naturally once the caller's
    /// shutdown signal reaches them.
    pub fn spawn<F>(label: &str, threads: usize, body: F) -> io::Result<WorkerPool>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(threads.max(1));
        for index in 0..threads.max(1) {
            let body = Arc::clone(&body);
            let handle = std::thread::Builder::new()
                .name(format!("{label}-{index}"))
                .spawn(move || body(index))?;
            handles.push(handle);
        }
        Ok(WorkerPool { handles })
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker body to return.
    ///
    /// # Panics
    /// Re-raises the panic of the first panicked worker (after joining all
    /// of them), so a crashed worker surfaces at the service's shutdown
    /// point instead of vanishing with its thread.
    pub fn join(self) {
        let mut first_panic = None;
        for handle in self.handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    #[test]
    fn every_worker_runs_the_body_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let pool = {
            let count = Arc::clone(&count);
            WorkerPool::spawn("t", 4, move |_| {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap()
        };
        pool.join();
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_indices_are_distinct() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let pool = {
            let seen = Arc::clone(&seen);
            WorkerPool::spawn("t", 3, move |index| {
                seen.lock().unwrap().push(index);
            })
            .unwrap()
        };
        pool.join();
        let mut indices = seen.lock().unwrap().clone();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let count = Arc::new(AtomicUsize::new(0));
        let pool = {
            let count = Arc::clone(&count);
            WorkerPool::spawn("t", 0, move |_| {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap()
        };
        assert_eq!(pool.threads(), 1);
        pool.join();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn workers_outlive_the_spawn_call_and_stop_on_signal() {
        // A miniature service: workers park on a condvar until shutdown.
        struct Gate {
            stop: Mutex<bool>,
            cv: Condvar,
        }
        let gate = Arc::new(Gate {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::spawn("svc", 2, move |_| {
                let mut stop = gate.stop.lock().unwrap();
                while !*stop {
                    stop = gate.cv.wait(stop).unwrap();
                }
            })
            .unwrap()
        };
        *gate.stop.lock().unwrap() = true;
        gate.cv.notify_all();
        pool.join();
    }

    #[test]
    fn join_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            let pool = WorkerPool::spawn("boom", 2, |index| {
                if index == 1 {
                    panic!("worker exploded");
                }
            })
            .unwrap();
            pool.join();
        });
        assert!(result.is_err());
    }
}
