//! The scoped fork-join executor with per-worker deques and work stealing.

use std::collections::VecDeque;
use std::convert::Infallible;
use std::ops::Range;
use std::sync::Mutex;

use crate::ParallelConfig;

/// Maps `f` over `items` on a scoped worker pool, returning results in item
/// order.
///
/// `f` receives the item's index alongside the item so callers can derive
/// per-task seeds (see [`crate::derive_seed`]).  The output is identical for
/// every thread count as long as `f(index, item)` itself is deterministic;
/// scheduling only decides *which worker* runs a task, never what the task
/// computes or where its result lands.
///
/// Workers are spawned per call via [`std::thread::scope`], which lets `f`
/// borrow freely from the caller's stack (networks, datasets, noise models)
/// without `Arc`.  Spawn cost is nanoseconds-to-microseconds against the
/// milliseconds-scale simulation tasks this crate exists for.
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(config: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_parallel_map(config, items, |index, item| {
        Ok::<R, Infallible>(f(index, item))
    }) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// [`parallel_map`] with per-worker state: every worker thread calls `init`
/// exactly once and hands the resulting value mutably to each of its tasks.
///
/// This is the hook the simulation engine uses to give every worker one
/// reusable `SimWorkspace`: `init` builds the (empty) workspace, tasks fill
/// and reuse it.  Because the state is per-*worker* while results are keyed
/// by per-*item* index, the output is identical for every thread count as
/// long as `f` is deterministic given `(index, item)` — state must only
/// carry scratch space, never values that influence results.
///
/// # Panics
/// Propagates panics from `init` or `f`.
pub fn parallel_map_init<T, S, R, I, F>(
    config: &ParallelConfig,
    items: &[T],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    match try_parallel_map_init(config, items, init, |state, index, item| {
        Ok::<R, Infallible>(f(state, index, item))
    }) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Fallible variant of [`parallel_map`].
///
/// All tasks run to completion (there is no early exit, so a failing grid is
/// still fully explored and the choice of reported error cannot depend on
/// scheduling); afterwards the error of the **lowest-indexed** failing task
/// is returned, or the full result vector if every task succeeded.
///
/// # Errors
/// Returns the lowest-indexed error produced by `f`.
///
/// # Panics
/// Propagates panics from `f`.
pub fn try_parallel_map<T, R, E, F>(config: &ParallelConfig, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_parallel_map_init(config, items, || (), |(), index, item| f(index, item))
}

/// Fallible variant of [`parallel_map_init`]; error handling follows
/// [`try_parallel_map`] (all tasks run, the lowest-indexed error wins).
///
/// # Errors
/// Returns the lowest-indexed error produced by `f`.
///
/// # Panics
/// Propagates panics from `init` or `f`.
pub fn try_parallel_map_init<T, S, R, E, I, F>(
    config: &ParallelConfig,
    items: &[T],
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    let len = items.len();
    if len == 0 {
        return Ok(Vec::new());
    }
    let batch = config.batch_size.max(1);
    let num_batches = len.div_ceil(batch);
    let threads = config.effective_threads().clamp(1, num_batches);

    if threads == 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(len);
        for (index, item) in items.iter().enumerate() {
            out.push(f(&mut state, index, item)?);
        }
        return Ok(out);
    }

    // Pre-distribute the batches round-robin over per-worker deques.  No new
    // tasks are ever injected, so "all deques empty" is a stable termination
    // condition.
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (batch_index, start) in (0..len).step_by(batch).enumerate() {
        let end = (start + batch).min(len);
        queues[batch_index % threads]
            .lock()
            .expect("queue lock poisoned")
            .push_back(start..end);
    }

    let mut slots: Vec<Option<Result<R, E>>> = (0..len).map(|_| None).collect();
    let result_sink: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(len));

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let queues = &queues;
            let result_sink = &result_sink;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                // One state per worker thread, reused across all the batches
                // this worker runs or steals.
                let mut state = init();
                let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                while let Some(range) = next_batch(queues, worker) {
                    for index in range {
                        local.push((index, f(&mut state, index, &items[index])));
                    }
                }
                result_sink
                    .lock()
                    .expect("result lock poisoned")
                    .extend(local);
            });
        }
    });

    for (index, result) in result_sink.into_inner().expect("result lock poisoned") {
        slots[index] = Some(result);
    }
    let mut out = Vec::with_capacity(len);
    for slot in slots {
        match slot.expect("executor ran every task exactly once") {
            Ok(value) => out.push(value),
            Err(error) => return Err(error),
        }
    }
    Ok(out)
}

/// Pops the worker's own next batch (front of its deque, FIFO) or steals the
/// last batch (back of the deque, the coldest work) from a peer.
fn next_batch(queues: &[Mutex<VecDeque<Range<usize>>>], worker: usize) -> Option<Range<usize>> {
    if let Some(range) = queues[worker]
        .lock()
        .expect("queue lock poisoned")
        .pop_front()
    {
        return Some(range);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        if let Some(range) = queues[victim]
            .lock()
            .expect("queue lock poisoned")
            .pop_back()
        {
            return Some(range);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(threads: usize, batch: usize) -> ParallelConfig {
        ParallelConfig::with_threads(threads).with_batch_size(batch)
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&cfg(4, 2), &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_item_order_for_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            for batch in [1, 3, 8, 1000] {
                let out = parallel_map(&cfg(threads, batch), &items, |_, &x| x * 3 + 1);
                assert_eq!(out, expected, "threads={threads} batch={batch}");
            }
        }
    }

    #[test]
    fn indices_match_items() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&cfg(4, 4), &items, |index, &item| (index, item));
        for (index, &(seen_index, item)) in out.iter().enumerate() {
            assert_eq!(index, seen_index);
            assert_eq!(index, item);
        }
    }

    #[test]
    fn uneven_task_costs_still_complete_via_stealing() {
        // One pathological batch (index 0) sleeps; stealing must keep the
        // other workers busy and everything must still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&cfg(4, 1), &items, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x * x
        });
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        parallel_map(&cfg(8, 7), &items, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn lowest_indexed_error_is_reported() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let result: Result<Vec<u32>, u32> =
                try_parallel_map(&cfg(threads, 3), &items, |_, &x| {
                    if x == 41 || x == 97 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(result, Err(41), "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_batches_degrades_gracefully() {
        let items = [1u8, 2, 3];
        let out = parallel_map(&cfg(64, 2), &items, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_init_runs_init_once_per_worker() {
        let states = AtomicUsize::new(0);
        let items: Vec<usize> = (0..200).collect();
        let out = parallel_map_init(
            &cfg(4, 5),
            &items,
            || {
                states.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, _, &x| {
                scratch.push(x); // scratch persists across this worker's tasks
                x * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let created = states.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&created),
            "expected at most one state per worker, got {created}"
        );
    }

    #[test]
    fn map_init_results_are_thread_count_invariant() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x + 7).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map_init(&cfg(threads, 3), &items, || 0usize, |_, _, &x| x + 7);
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn try_map_init_reports_lowest_indexed_error() {
        let items: Vec<u32> = (0..50).collect();
        for threads in [1, 4] {
            let result: Result<Vec<u32>, u32> = try_parallel_map_init(
                &cfg(threads, 2),
                &items,
                || (),
                |(), _, &x| {
                    if x % 13 == 12 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            );
            assert_eq!(result, Err(12), "threads={threads}");
        }
    }
}
