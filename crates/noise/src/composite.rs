//! Composition of several noise models.

use rand::RngCore;

use nrsnn_snn::{SpikeRaster, SpikeTransform};

/// Applies a sequence of spike transforms one after another, e.g. deletion
/// followed by jitter, to model hardware that suffers from both effects.
#[derive(Default)]
pub struct CompositeNoise {
    // `SpikeTransform` itself requires `Send + Sync`, so a composite can
    // cross threads like any primitive noise model.
    stages: Vec<Box<dyn SpikeTransform>>,
}

impl CompositeNoise {
    /// Creates an empty composite (equivalent to the identity transform).
    pub fn new() -> Self {
        CompositeNoise { stages: Vec::new() }
    }

    /// Appends a stage (builder style).
    #[must_use]
    pub fn then<T: SpikeTransform + 'static>(mut self, stage: T) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if no stages are configured.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl std::fmt::Debug for CompositeNoise {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompositeNoise({})", self.describe())
    }
}

impl SpikeTransform for CompositeNoise {
    fn apply(&self, raster: &SpikeRaster, rng: &mut dyn RngCore) -> SpikeRaster {
        let mut current = raster.clone();
        for stage in &self.stages {
            current = stage.apply(&current, rng);
        }
        current
    }

    fn apply_into(&self, raster: &SpikeRaster, out: &mut SpikeRaster, rng: &mut dyn RngCore) {
        match self.stages.split_first() {
            None => out.copy_from(raster),
            Some((first, rest)) => {
                // First stage into `out`, every further stage mutates `out`
                // in place — no scratch raster, so a multi-stage composite
                // is as allocation-free as its stages.  Each stage consumes
                // the RNG exactly as in `apply`, keeping the composite
                // bit-identical to the allocating path.
                first.apply_into(raster, out, rng);
                for stage in rest {
                    stage.apply_in_place(out, rng);
                }
            }
        }
    }

    fn apply_in_place(&self, raster: &mut SpikeRaster, rng: &mut dyn RngCore) {
        for stage in &self.stages {
            stage.apply_in_place(raster, rng);
        }
    }

    fn is_identity(&self) -> bool {
        self.stages.iter().all(|stage| stage.is_identity())
    }

    fn describe(&self) -> String {
        if self.stages.is_empty() {
            return "clean".to_string();
        }
        self.stages
            .iter()
            .map(|s| s.describe())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeletionNoise, JitterNoise};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn raster() -> SpikeRaster {
        SpikeRaster::from_trains(vec![(0..100).collect(), (0..100).collect()], 128)
    }

    #[test]
    fn empty_composite_is_identity() {
        let noise = CompositeNoise::new();
        let mut rng = StdRng::seed_from_u64(0);
        let r = raster();
        assert_eq!(noise.apply(&r, &mut rng), r);
        assert!(noise.is_empty());
        assert_eq!(noise.describe(), "clean");
    }

    #[test]
    fn deletion_then_jitter_reduces_count_and_moves_spikes() {
        let noise = CompositeNoise::new()
            .then(DeletionNoise::new(0.5).unwrap())
            .then(JitterNoise::new(2.0).unwrap());
        assert_eq!(noise.len(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let out = noise.apply(&raster(), &mut rng);
        assert!(out.total_spikes() < 200);
        assert!(out.total_spikes() > 50);
    }

    #[test]
    fn apply_into_matches_apply_for_any_stage_count() {
        let r = raster();
        let composites = [
            CompositeNoise::new(),
            CompositeNoise::new().then(DeletionNoise::new(0.4).unwrap()),
            CompositeNoise::new()
                .then(DeletionNoise::new(0.5).unwrap())
                .then(JitterNoise::new(2.0).unwrap()),
            CompositeNoise::new()
                .then(JitterNoise::new(1.0).unwrap())
                .then(DeletionNoise::new(0.2).unwrap())
                .then(JitterNoise::new(3.0).unwrap()),
        ];
        for (i, noise) in composites.iter().enumerate() {
            let mut rng_a = StdRng::seed_from_u64(5);
            let mut rng_b = StdRng::seed_from_u64(5);
            let reference = noise.apply(&r, &mut rng_a);
            let mut reused = SpikeRaster::new(1, 1);
            noise.apply_into(&r, &mut reused, &mut rng_b);
            assert_eq!(reused, reference, "composite {i}");
            assert_eq!(rng_a, rng_b, "composite {i}");
        }
    }

    #[test]
    fn apply_in_place_matches_apply_for_stage_chains() {
        let r = raster();
        let noise = CompositeNoise::new()
            .then(JitterNoise::new(1.5).unwrap())
            .then(DeletionNoise::new(0.3).unwrap())
            .then(JitterNoise::new(0.5).unwrap());
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let reference = noise.apply(&r, &mut rng_a);
        let mut in_place = r.clone();
        noise.apply_in_place(&mut in_place, &mut rng_b);
        assert_eq!(in_place, reference);
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn is_identity_requires_every_stage_to_be_identity() {
        assert!(CompositeNoise::new().is_identity());
        assert!(CompositeNoise::new()
            .then(DeletionNoise::new(0.0).unwrap())
            .then(JitterNoise::new(0.0).unwrap())
            .is_identity());
        assert!(!CompositeNoise::new()
            .then(DeletionNoise::new(0.0).unwrap())
            .then(JitterNoise::new(1.0).unwrap())
            .is_identity());
    }

    #[test]
    fn describe_lists_all_stages() {
        let noise = CompositeNoise::new()
            .then(DeletionNoise::new(0.2).unwrap())
            .then(JitterNoise::new(1.0).unwrap());
        let d = noise.describe();
        assert!(d.contains("deletion"));
        assert!(d.contains("jitter"));
        assert!(format!("{noise:?}").contains("deletion"));
    }
}
