//! Spike-jitter noise.

use rand::{Rng, RngCore};

use nrsnn_snn::{SpikeRaster, SpikeTransform};

use crate::{NoiseError, Result};

/// Spike-time jitter: every spike time is shifted by a zero-mean Gaussian
/// with standard deviation `σ`, quantised to integer time steps and clamped
/// to the window (the paper's jitter model, §III).
///
/// Jitter corrupts *when* spikes arrive rather than destroying them, so
/// codings that read out timing (phase, TTFS) suffer while rate coding is
/// largely untouched.  Spikes are binary events, though: two spikes of one
/// neuron that collide on the same time step after shifting-and-clamping
/// merge into a single spike (enforced by the raster's normalisation), so
/// heavy jitter near the window edges can reduce the spike count — the
/// train, its count, and every decode stay mutually consistent.
///
/// ```
/// use nrsnn_noise::JitterNoise;
/// use nrsnn_snn::{SpikeRaster, SpikeTransform};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), nrsnn_noise::NoiseError> {
/// let noise = JitterNoise::new(2.0)?;
/// let mut raster = SpikeRaster::new(1, 64);
/// raster.set_train(0, vec![10, 20, 30]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let jittered = noise.apply(&raster, &mut rng);
/// // Spike count is preserved; only the timings move.
/// assert_eq!(jittered.total_spikes(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterNoise {
    sigma: f64,
}

impl JitterNoise {
    /// Creates a jitter model with standard deviation `sigma` (in time
    /// steps).
    ///
    /// # Errors
    /// Returns [`NoiseError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn new(sigma: f64) -> Result<Self> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(NoiseError::InvalidParameter(format!(
                "jitter sigma must be a non-negative finite number, got {sigma}"
            )));
        }
        Ok(JitterNoise { sigma })
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    fn gaussian(rng: &mut dyn RngCore) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl SpikeTransform for JitterNoise {
    fn apply(&self, raster: &SpikeRaster, rng: &mut dyn RngCore) -> SpikeRaster {
        if self.sigma == 0.0 {
            return raster.clone();
        }
        let max_t = raster.num_steps().saturating_sub(1) as i64;
        raster.map_trains(|_, train| {
            // Silent neurons draw no randomness and need no work — under
            // sparse temporal codings most trains are empty, so the
            // transform's cost tracks the active set, not the layer width.
            if train.is_empty() {
                return Vec::new();
            }
            train
                .iter()
                .map(|&t| {
                    let shift = (Self::gaussian(rng) * self.sigma).round() as i64;
                    (t as i64 + shift).clamp(0, max_t) as u32
                })
                .collect()
        })
    }

    fn apply_into(&self, raster: &SpikeRaster, out: &mut SpikeRaster, rng: &mut dyn RngCore) {
        if self.sigma == 0.0 {
            out.copy_from(raster);
            return;
        }
        let max_t = raster.num_steps().saturating_sub(1) as i64;
        // Same neuron order and two RNG draws per spike, exactly as `apply`;
        // empty trains are skipped outright (they draw nothing).
        raster.map_trains_into(out, |_, train, shifted| {
            if train.is_empty() {
                return;
            }
            shifted.extend(train.iter().map(|&t| {
                let shift = (Self::gaussian(rng) * self.sigma).round() as i64;
                (t as i64 + shift).clamp(0, max_t) as u32
            }));
        });
    }

    fn apply_in_place(&self, raster: &mut SpikeRaster, rng: &mut dyn RngCore) {
        if self.sigma == 0.0 {
            return;
        }
        let max_t = raster.num_steps().saturating_sub(1) as i64;
        // Two RNG draws per spike in spike order, exactly as `apply`;
        // `update_trains` re-normalises each train like `set_train` does
        // (sort + merge colliding spikes), and skips empty trains.
        raster.update_trains(|_, train| {
            for t in train.iter_mut() {
                let shift = (Self::gaussian(rng) * self.sigma).round() as i64;
                *t = (*t as i64 + shift).clamp(0, max_t) as u32;
            }
        });
    }

    fn is_identity(&self) -> bool {
        self.sigma == 0.0
    }

    fn describe(&self) -> String {
        format!("jitter(sigma={})", self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_sigma_rejected() {
        assert!(JitterNoise::new(-1.0).is_err());
        assert!(JitterNoise::new(f64::NAN).is_err());
        assert!(JitterNoise::new(f64::INFINITY).is_err());
        assert!(JitterNoise::new(0.0).is_ok());
    }

    #[test]
    fn zero_sigma_is_identity() {
        let raster = SpikeRaster::from_trains(vec![vec![1, 5, 9]], 16);
        let mut rng = StdRng::seed_from_u64(0);
        let out = JitterNoise::new(0.0).unwrap().apply(&raster, &mut rng);
        assert_eq!(out, raster);
    }

    #[test]
    fn jitter_never_creates_spikes_and_keeps_trains_binary() {
        let raster = SpikeRaster::from_trains(vec![(0..50).collect(), (10..30).collect()], 64);
        let mut rng = StdRng::seed_from_u64(1);
        let out = JitterNoise::new(3.0).unwrap().apply(&raster, &mut rng);
        // Jitter deletes nothing, but colliding spikes merge: the count can
        // only shrink, and every train stays strictly increasing.
        assert!(out.total_spikes() <= raster.total_spikes());
        assert!(out.total_spikes() > 0);
        for (_, train) in out.iter() {
            assert!(train.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Regression for jitter collisions at the window edges: spikes pinned
    /// at the first and last steps get clamped onto each other under heavy
    /// jitter, and the resulting trains must stay duplicate-free so
    /// train-based counts, dense 0/1 views and PSC decodes all agree.
    #[test]
    fn clamped_collisions_at_window_edges_merge_instead_of_duplicating() {
        let steps = 16u32;
        let raster =
            SpikeRaster::from_trains(vec![vec![0, 1, 2], vec![13, 14, 15], vec![0, 15]], steps);
        let noise = JitterNoise::new(40.0).unwrap(); // almost every spike clamps
        let mut merged_somewhere = false;
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = noise.apply(&raster, &mut rng);
            for (n, train) in out.iter() {
                // Strictly increasing == sorted and duplicate-free.
                assert!(
                    train.windows(2).all(|w| w[0] < w[1]),
                    "seed {seed} neuron {n}: {train:?}"
                );
                assert!(train.iter().all(|&t| t < steps));
                // The per-train count is the train length by construction;
                // a dense 0/1 view over the window carries the same count.
                let dense_count = (0..steps).filter(|t| train.contains(t)).count();
                assert_eq!(dense_count, train.len(), "seed {seed} neuron {n}");
            }
            if out.total_spikes() < raster.total_spikes() {
                merged_somewhere = true;
            }
        }
        // With σ = 40 on a 16-step window, collisions are guaranteed to
        // have happened across 32 seeds.
        assert!(merged_somewhere, "expected at least one clamped collision");
    }

    #[test]
    fn jittered_times_stay_inside_window() {
        let raster = SpikeRaster::from_trains(vec![vec![0, 1, 62, 63]], 64);
        let mut rng = StdRng::seed_from_u64(2);
        let out = JitterNoise::new(10.0).unwrap().apply(&raster, &mut rng);
        assert!(out.train(0).iter().all(|&t| t < 64));
    }

    #[test]
    fn average_shift_is_roughly_zero_and_spread_grows_with_sigma() {
        // One spike per neuron (trains are binary: 4000 coincident spikes
        // on one neuron would merge), all at t = 500 far from the clamps.
        let trains: Vec<Vec<u32>> = (0..4000).map(|_| vec![500]).collect();
        let raster = SpikeRaster::from_trains(trains, 1000);
        let mut rng = StdRng::seed_from_u64(3);
        for sigma in [1.0f64, 3.0] {
            let out = JitterNoise::new(sigma).unwrap().apply(&raster, &mut rng);
            let shifts: Vec<f64> = out
                .iter()
                .flat_map(|(_, t)| t.iter())
                .map(|&t| t as f64 - 500.0)
                .collect();
            assert_eq!(shifts.len(), 4000);
            let mean = shifts.iter().sum::<f64>() / shifts.len() as f64;
            let var =
                shifts.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / shifts.len() as f64;
            assert!(mean.abs() < 0.2, "sigma {sigma}: mean {mean}");
            assert!(
                (var.sqrt() - sigma).abs() < 0.35,
                "sigma {sigma}: std {}",
                var.sqrt()
            );
        }
    }

    #[test]
    fn describe_mentions_sigma() {
        assert!(JitterNoise::new(2.5).unwrap().describe().contains("2.5"));
    }

    #[test]
    fn apply_into_matches_apply_with_identical_rng_consumption() {
        let raster = SpikeRaster::from_trains(vec![(0..30).collect(), vec![5, 9], vec![]], 64);
        for sigma in [0.0, 1.0, 4.5] {
            let noise = JitterNoise::new(sigma).unwrap();
            let mut rng_a = StdRng::seed_from_u64(21);
            let mut rng_b = StdRng::seed_from_u64(21);
            let reference = noise.apply(&raster, &mut rng_a);
            let mut reused = SpikeRaster::new(9, 9); // wrong shape: must be reset
            noise.apply_into(&raster, &mut reused, &mut rng_b);
            assert_eq!(reused, reference, "sigma {sigma}");
            assert_eq!(rng_a, rng_b, "sigma {sigma}");
        }
    }

    #[test]
    fn apply_in_place_matches_apply_with_identical_rng_consumption() {
        let raster = SpikeRaster::from_trains(vec![(0..20).collect(), vec![3, 60]], 64);
        for sigma in [0.0, 2.5] {
            let noise = JitterNoise::new(sigma).unwrap();
            let mut rng_a = StdRng::seed_from_u64(41);
            let mut rng_b = StdRng::seed_from_u64(41);
            let reference = noise.apply(&raster, &mut rng_a);
            let mut in_place = raster.clone();
            noise.apply_in_place(&mut in_place, &mut rng_b);
            assert_eq!(in_place, reference, "sigma {sigma}");
            assert_eq!(rng_a, rng_b, "sigma {sigma}");
        }
    }

    #[test]
    fn is_identity_only_at_zero_sigma() {
        assert!(JitterNoise::new(0.0).unwrap().is_identity());
        assert!(!JitterNoise::new(0.5).unwrap().is_identity());
    }
}
