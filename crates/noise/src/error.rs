use std::error::Error;
use std::fmt;

/// Error type for noise-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A noise parameter was outside its valid range.
    InvalidParameter(String),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidParameter(msg) => write!(f, "invalid noise parameter: {msg}"),
        }
    }
}

impl Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let e = NoiseError::InvalidParameter("p out of range".to_string());
        assert!(e.to_string().contains("p out of range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NoiseError>();
    }
}
