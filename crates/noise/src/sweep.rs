//! Noise-parameter sweeps used in the paper's evaluation.

/// Deletion probabilities swept in Figs. 2, 4 and 7 (0.0 to 0.9 in steps of
/// 0.1, where 0.0 is the clean baseline).
pub fn paper_deletion_probabilities() -> Vec<f64> {
    (0..10).map(|i| i as f64 / 10.0).collect()
}

/// Jitter intensities swept in Figs. 3, 6 and 8 (σ from 0.5 to 4.0 in steps
/// of 0.5, preceded by the clean baseline σ = 0).
pub fn paper_jitter_intensities() -> Vec<f64> {
    let mut v = vec![0.0];
    v.extend((1..=8).map(|i| i as f64 * 0.5));
    v
}

/// The deletion probabilities reported in Table I (clean, 0.2, 0.5, 0.8).
pub fn paper_table_deletion_points() -> Vec<f64> {
    vec![0.0, 0.2, 0.5, 0.8]
}

/// The jitter intensities reported in Table II (clean, 1.0, 2.0, 3.0).
pub fn paper_table_jitter_points() -> Vec<f64> {
    vec![0.0, 1.0, 2.0, 3.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deletion_sweep_matches_paper_grid() {
        let p = paper_deletion_probabilities();
        assert_eq!(p.len(), 10);
        assert_eq!(p[0], 0.0);
        assert!((p[9] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn jitter_sweep_matches_paper_grid() {
        let s = paper_jitter_intensities();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 0.0);
        assert!((s[1] - 0.5).abs() < 1e-12);
        assert!((s[8] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_points_are_subsets_of_the_sweeps() {
        for p in paper_table_deletion_points() {
            assert!(paper_deletion_probabilities()
                .iter()
                .any(|&x| (x - p).abs() < 1e-9));
        }
        for s in paper_table_jitter_points() {
            assert!(paper_jitter_intensities()
                .iter()
                .any(|&x| (x - s).abs() < 1e-9));
        }
    }
}
