//! Weight-scaling compensation (the paper's "WS").

use nrsnn_snn::SnnNetwork;
use serde::{Deserialize, Serialize};

use crate::{NoiseError, Result};

/// Uniform synaptic weight scaling `W' = C·W`.
///
/// Under deletion with probability `p` the expected post-synaptic current is
/// reduced to `(1−p)·Z`; the paper compensates by choosing the scale factor
/// proportionally to the deletion probability.  The canonical choice
/// implemented by [`WeightScaling::for_deletion_probability`] is
/// `C = 1/(1−p)`, which restores the expectation exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightScaling {
    factor: f32,
}

impl WeightScaling {
    /// No scaling (`C = 1`).
    pub fn none() -> Self {
        WeightScaling { factor: 1.0 }
    }

    /// An explicit scale factor.
    ///
    /// # Errors
    /// Returns [`NoiseError::InvalidParameter`] for non-positive or
    /// non-finite factors.
    pub fn with_factor(factor: f32) -> Result<Self> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(NoiseError::InvalidParameter(format!(
                "weight scale must be positive and finite, got {factor}"
            )));
        }
        Ok(WeightScaling { factor })
    }

    /// The compensation factor for a known deletion probability:
    /// `C = 1/(1−p)`.
    ///
    /// # Errors
    /// Returns [`NoiseError::InvalidParameter`] unless `0 ≤ p < 1`.
    pub fn for_deletion_probability(p: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NoiseError::InvalidParameter(format!(
                "deletion probability must be in [0, 1), got {p}"
            )));
        }
        WeightScaling::with_factor(1.0 / (1.0 - p as f32))
    }

    /// The scale factor `C`.
    pub fn factor(&self) -> f32 {
        self.factor
    }

    /// Returns `true` if this scaling is a no-op.
    pub fn is_identity(&self) -> bool {
        (self.factor - 1.0).abs() < f32::EPSILON
    }

    /// Applies the scaling to every weighted layer of a converted network.
    pub fn apply(&self, network: &mut SnnNetwork) {
        if !self.is_identity() {
            network.scale_weights(self.factor);
        }
    }
}

impl Default for WeightScaling {
    fn default() -> Self {
        WeightScaling::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrsnn_snn::SnnLayer;
    use nrsnn_tensor::Tensor;

    #[test]
    fn factor_for_deletion_probability() {
        assert!(
            (WeightScaling::for_deletion_probability(0.0)
                .unwrap()
                .factor()
                - 1.0)
                .abs()
                < 1e-6
        );
        assert!(
            (WeightScaling::for_deletion_probability(0.5)
                .unwrap()
                .factor()
                - 2.0)
                .abs()
                < 1e-6
        );
        assert!(
            (WeightScaling::for_deletion_probability(0.8)
                .unwrap()
                .factor()
                - 5.0)
                .abs()
                < 1e-4
        );
        assert!(WeightScaling::for_deletion_probability(1.0).is_err());
        assert!(WeightScaling::for_deletion_probability(-0.1).is_err());
    }

    #[test]
    fn invalid_factors_rejected() {
        assert!(WeightScaling::with_factor(0.0).is_err());
        assert!(WeightScaling::with_factor(-2.0).is_err());
        assert!(WeightScaling::with_factor(f32::INFINITY).is_err());
        assert!(WeightScaling::with_factor(f32::NAN).is_err());
        assert!(WeightScaling::for_deletion_probability(f64::NAN).is_err());
    }

    #[test]
    fn none_is_identity() {
        assert!(WeightScaling::none().is_identity());
        assert!(WeightScaling::default().is_identity());
        assert!(!WeightScaling::with_factor(2.0).unwrap().is_identity());
    }

    #[test]
    fn apply_scales_network_weights() {
        let mut network = SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::ones(&[2, 2]),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap();
        WeightScaling::with_factor(3.0).unwrap().apply(&mut network);
        let SnnLayer::Linear { weights, .. } = &network.layers()[0] else {
            panic!("expected linear layer");
        };
        assert_eq!(weights.get(&[0, 0]).unwrap(), 3.0);
        // Bias must not be scaled: only synaptic weights compensate deletion.
        let SnnLayer::Linear { bias, .. } = &network.layers()[0] else {
            panic!("expected linear layer");
        };
        assert_eq!(bias.sum(), 0.0);
    }

    #[test]
    fn expected_psc_is_restored() {
        // Monte-Carlo check of the core identity: E[(C·w)·x·survive] = w·x
        // when C = 1/(1-p).
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = 0.6;
        let c = WeightScaling::for_deletion_probability(p).unwrap().factor();
        let trials = 20_000;
        let mut acc = 0.0f64;
        for _ in 0..trials {
            let survived = rng.gen::<f64>() >= p;
            if survived {
                acc += c as f64;
            }
        }
        let mean = acc / trials as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
