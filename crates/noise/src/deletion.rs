//! Spike-deletion noise.

use rand::{Rng, RngCore};

use nrsnn_snn::{SpikeRaster, SpikeTransform};

use crate::{NoiseError, Result};

/// Independent per-spike deletion: every transmitted spike is dropped with
/// probability `p` (the paper's deletion model, §III).
///
/// Deletion destroys part of the post-synaptic-current sum; how much of the
/// carried *value* is destroyed depends entirely on the neural coding —
/// graded for rate/phase/burst, all-or-none for TTFS, near-all-or-none for
/// TTAS — which is the core observation of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeletionNoise {
    probability: f64,
}

impl DeletionNoise {
    /// Creates a deletion model with drop probability `probability`.
    ///
    /// # Errors
    /// Returns [`NoiseError::InvalidParameter`] unless `0.0 ≤ p ≤ 1.0`.
    pub fn new(probability: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&probability) || probability.is_nan() {
            return Err(NoiseError::InvalidParameter(format!(
                "deletion probability must be in [0, 1], got {probability}"
            )));
        }
        Ok(DeletionNoise { probability })
    }

    /// The configured deletion probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl SpikeTransform for DeletionNoise {
    fn apply(&self, raster: &SpikeRaster, rng: &mut dyn RngCore) -> SpikeRaster {
        if self.probability == 0.0 {
            return raster.clone();
        }
        raster.map_trains(|_, train| {
            // Silent neurons draw no randomness and need no work — under
            // sparse temporal codings most trains are empty, so the
            // transform's cost tracks the active set, not the layer width.
            if train.is_empty() {
                return Vec::new();
            }
            train
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() >= self.probability)
                .collect()
        })
    }

    fn apply_into(&self, raster: &SpikeRaster, out: &mut SpikeRaster, rng: &mut dyn RngCore) {
        if self.probability == 0.0 {
            out.copy_from(raster);
            return;
        }
        // Same neuron order and one RNG draw per spike, exactly as `apply`;
        // empty trains are skipped outright (they draw nothing).
        raster.map_trains_into(out, |_, train, kept| {
            if train.is_empty() {
                return;
            }
            kept.extend(
                train
                    .iter()
                    .copied()
                    .filter(|_| rng.gen::<f64>() >= self.probability),
            );
        });
    }

    fn apply_in_place(&self, raster: &mut SpikeRaster, rng: &mut dyn RngCore) {
        if self.probability == 0.0 {
            return;
        }
        // `retain` visits spikes in order: one RNG draw per spike, exactly
        // as `apply`.
        raster.update_trains(|_, train| {
            train.retain(|_| rng.gen::<f64>() >= self.probability);
        });
    }

    fn is_identity(&self) -> bool {
        self.probability == 0.0
    }

    fn describe(&self) -> String {
        format!("deletion(p={})", self.probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_raster(neurons: usize, steps: u32) -> SpikeRaster {
        let trains = (0..neurons).map(|_| (0..steps).collect()).collect();
        SpikeRaster::from_trains(trains, steps)
    }

    #[test]
    fn invalid_probabilities_rejected() {
        assert!(DeletionNoise::new(-0.1).is_err());
        assert!(DeletionNoise::new(1.5).is_err());
        assert!(DeletionNoise::new(f64::NAN).is_err());
        assert!(DeletionNoise::new(0.0).is_ok());
        assert!(DeletionNoise::new(1.0).is_ok());
    }

    #[test]
    fn zero_probability_is_identity() {
        let raster = dense_raster(3, 50);
        let mut rng = StdRng::seed_from_u64(0);
        let out = DeletionNoise::new(0.0).unwrap().apply(&raster, &mut rng);
        assert_eq!(out, raster);
    }

    #[test]
    fn full_probability_deletes_everything() {
        let raster = dense_raster(3, 50);
        let mut rng = StdRng::seed_from_u64(0);
        let out = DeletionNoise::new(1.0).unwrap().apply(&raster, &mut rng);
        assert_eq!(out.total_spikes(), 0);
    }

    #[test]
    fn survival_fraction_is_close_to_one_minus_p() {
        let raster = dense_raster(100, 100); // 10_000 spikes
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.2, 0.5, 0.8] {
            let out = DeletionNoise::new(p).unwrap().apply(&raster, &mut rng);
            let survived = out.total_spikes() as f64 / 10_000.0;
            assert!(
                (survived - (1.0 - p)).abs() < 0.03,
                "p {p}: survived {survived}"
            );
        }
    }

    #[test]
    fn surviving_spike_times_are_a_subset() {
        let raster = SpikeRaster::from_trains(vec![vec![3, 7, 11, 19]], 32);
        let mut rng = StdRng::seed_from_u64(3);
        let out = DeletionNoise::new(0.5).unwrap().apply(&raster, &mut rng);
        for &t in out.train(0) {
            assert!(raster.train(0).contains(&t));
        }
    }

    #[test]
    fn describe_mentions_probability() {
        assert!(DeletionNoise::new(0.3).unwrap().describe().contains("0.3"));
    }

    #[test]
    fn apply_into_matches_apply_with_identical_rng_consumption() {
        let raster = dense_raster(7, 40);
        for p in [0.0, 0.3, 0.8, 1.0] {
            let noise = DeletionNoise::new(p).unwrap();
            let mut rng_a = StdRng::seed_from_u64(11);
            let mut rng_b = StdRng::seed_from_u64(11);
            let reference = noise.apply(&raster, &mut rng_a);
            let mut reused = SpikeRaster::new(1, 2); // wrong shape: must be reset
            noise.apply_into(&raster, &mut reused, &mut rng_b);
            assert_eq!(reused, reference, "p {p}");
            // Both paths must have advanced the RNG identically.
            assert_eq!(rng_a, rng_b, "p {p}");
        }
    }

    #[test]
    fn apply_in_place_matches_apply_with_identical_rng_consumption() {
        let raster = dense_raster(5, 30);
        for p in [0.0, 0.4, 1.0] {
            let noise = DeletionNoise::new(p).unwrap();
            let mut rng_a = StdRng::seed_from_u64(31);
            let mut rng_b = StdRng::seed_from_u64(31);
            let reference = noise.apply(&raster, &mut rng_a);
            let mut in_place = raster.clone();
            noise.apply_in_place(&mut in_place, &mut rng_b);
            assert_eq!(in_place, reference, "p {p}");
            assert_eq!(rng_a, rng_b, "p {p}");
        }
    }

    #[test]
    fn is_identity_only_at_zero_probability() {
        assert!(DeletionNoise::new(0.0).unwrap().is_identity());
        assert!(!DeletionNoise::new(0.01).unwrap().is_identity());
    }
}
