//! # nrsnn-noise
//!
//! Spike-train noise models and the weight-scaling compensation from the
//! paper.
//!
//! The paper models the dynamic noise of analog neuromorphic hardware as
//! corruption of the transmitted spike trains (§II-B, §III):
//!
//! * **spike deletion** ([`DeletionNoise`]) — every spike is independently
//!   dropped with probability `p`;
//! * **spike jitter** ([`JitterNoise`]) — every spike time is shifted by a
//!   zero-mean Gaussian with standard deviation `σ`, quantised to integer
//!   time steps.
//!
//! Both implement the [`SpikeTransform`](nrsnn_snn::SpikeTransform) hook of
//! `nrsnn-snn`, so they can be
//! injected into every layer-to-layer raster during simulation, and both can
//! be combined with [`CompositeNoise`].
//!
//! [`WeightScaling`] implements the paper's first counter-measure: scaling
//! the converted synaptic weights by `C = 1/(1-p)` so the expected
//! post-synaptic current under deletion is restored.
//!
//! ## Example
//!
//! ```
//! use nrsnn_noise::{DeletionNoise, WeightScaling};
//! use nrsnn_snn::{SpikeRaster, SpikeTransform};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nrsnn_noise::NoiseError> {
//! let noise = DeletionNoise::new(0.5)?;
//! let mut raster = SpikeRaster::new(1, 100);
//! raster.set_train(0, (0..100).collect());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let corrupted = noise.apply(&raster, &mut rng);
//! assert!(corrupted.total_spikes() < 100);
//!
//! let ws = WeightScaling::for_deletion_probability(0.5)?;
//! assert!((ws.factor() - 2.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```
//!
//! ## Thread safety and parallel sweeps
//!
//! Every noise model here is immutable parameters plus a per-call `rng`, so
//! [`SpikeTransform`](nrsnn_snn::SpikeTransform) requires `Send + Sync` and
//! one model instance can serve a whole worker pool.  The sweep engine in
//! `nrsnn` exploits this; the same pattern works directly against
//! `nrsnn-runtime` — and stays bit-identical across thread counts as long
//! as each task derives its own seed:
//!
//! ```
//! use nrsnn_noise::DeletionNoise;
//! use nrsnn_runtime::{derive_seed, parallel_map, ParallelConfig};
//! use nrsnn_snn::{SpikeRaster, SpikeTransform};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nrsnn_noise::NoiseError> {
//! let noise = DeletionNoise::new(0.5)?;
//! let mut raster = SpikeRaster::new(1, 100);
//! raster.set_train(0, (0..100).collect());
//!
//! // One shared noise model, one task per noise realisation.
//! let realisations: Vec<u64> = (0..16).collect();
//! let survivors = |parallel: ParallelConfig| -> Vec<usize> {
//!     parallel_map(&parallel, &realisations, |index, _| {
//!         let mut rng = StdRng::seed_from_u64(derive_seed(7, index as u64));
//!         noise.apply(&raster, &mut rng).total_spikes()
//!     })
//! };
//! assert_eq!(
//!     survivors(ParallelConfig::serial()),
//!     survivors(ParallelConfig::with_threads(4)),
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod composite;
mod deletion;
mod error;
mod jitter;
mod scaling;
mod sweep;

pub use composite::CompositeNoise;
pub use deletion::DeletionNoise;
pub use error::NoiseError;
pub use jitter::JitterNoise;
pub use scaling::WeightScaling;
pub use sweep::{
    paper_deletion_probabilities, paper_jitter_intensities, paper_table_deletion_points,
    paper_table_jitter_points,
};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NoiseError>;
