//! The flight recorder: a preallocated, sharded ring buffer of the last N
//! request timelines, with a separate retention ring for slow/failed
//! outliers so they survive the churn of healthy traffic.
//!
//! Each worker records into its own shard (one uncontended mutex per
//! worker); all slots are preallocated [`TraceRecord`]s refilled via
//! [`TraceRecord::copy_from`], so steady-state recording performs **zero**
//! heap allocations once every slot's span buffer has grown to the
//! workload's span count. Queries ([`FlightRecorder::recent`]) run on the
//! scrape path and may allocate freely.

use std::sync::Mutex;

use crate::span::TraceRecord;

/// Sizing and outlier policy of a [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Number of shards (one per worker, at least one).
    pub shards: usize,
    /// Recent-ring capacity per shard.
    pub recent_capacity: usize,
    /// Outlier-ring capacity per shard.
    pub outlier_capacity: usize,
    /// A successful request at least this slow is retained as an outlier;
    /// `0` disables the slowness criterion (failures are always outliers).
    pub slow_threshold_ns: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            shards: 1,
            recent_capacity: 64,
            outlier_capacity: 16,
            slow_threshold_ns: 50_000_000, // 50 ms
        }
    }
}

#[derive(Debug, Default)]
struct Ring {
    slots: Vec<TraceRecord>,
    capacity: usize,
    /// Next slot to overwrite.
    head: usize,
    /// Number of live slots (saturates at `capacity`).
    len: usize,
}

impl Ring {
    fn with_capacity(capacity: usize) -> Self {
        Ring {
            // Fully materialise the slots up front: steady-state recording
            // must never push.
            slots: (0..capacity).map(|_| TraceRecord::default()).collect(),
            capacity,
            head: 0,
            len: 0,
        }
    }

    fn push_copy(&mut self, record: &TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        self.slots[self.head].copy_from(record);
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    fn live(&self) -> &[TraceRecord] {
        &self.slots[..self.len]
    }
}

#[derive(Debug, Default)]
struct Shard {
    recent: Ring,
    outliers: Ring,
}

/// Bounded in-memory store of the most recent request timelines.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    slow_threshold_ns: u64,
}

impl FlightRecorder {
    /// Creates a recorder with every ring slot preallocated.
    pub fn new(config: RecorderConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| {
                Mutex::new(Shard {
                    recent: Ring::with_capacity(config.recent_capacity),
                    outliers: Ring::with_capacity(config.outlier_capacity),
                })
            })
            .collect();
        FlightRecorder {
            shards,
            slow_threshold_ns: config.slow_threshold_ns,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `record` into shard `shard` (the recording worker's own
    /// shard — the mutex is uncontended except against a concurrent
    /// scrape). Failed requests, and successful ones at least
    /// `slow_threshold_ns` long, are additionally retained in the outlier
    /// ring. Allocation-free after warm-up.
    ///
    /// # Panics
    /// Panics if `shard` is out of range (a worker-plumbing bug).
    pub fn record(&self, shard: usize, record: &TraceRecord) {
        let is_outlier = !record.ok
            || (self.slow_threshold_ns > 0 && record.duration_ns() >= self.slow_threshold_ns);
        let mut guard = self.shards[shard].lock().expect("recorder shard lock");
        guard.recent.push_copy(record);
        if is_outlier {
            guard.outliers.push_copy(record);
        }
    }

    /// Returns up to `last` of the most recent timelines (newest first,
    /// ordered by end time), followed by any retained outliers that did not
    /// make the recency cut. Cold path: clones freely.
    pub fn recent(&self, last: usize) -> Vec<TraceRecord> {
        let mut fresh: Vec<TraceRecord> = Vec::new();
        let mut outliers: Vec<TraceRecord> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("recorder shard lock");
            fresh.extend(guard.recent.live().iter().cloned());
            outliers.extend(guard.outliers.live().iter().cloned());
        }
        fresh.sort_by(|a, b| b.end_ns.cmp(&a.end_ns).then(b.trace_id.cmp(&a.trace_id)));
        fresh.truncate(last);
        outliers.sort_by(|a, b| b.end_ns.cmp(&a.end_ns).then(b.trace_id.cmp(&a.trace_id)));
        for outlier in outliers {
            if !fresh.iter().any(|t| t.trace_id == outlier.trace_id) {
                fresh.push(outlier);
            }
        }
        fresh
    }

    /// Looks up one timeline by trace id across all shards (recent rings
    /// first, then outliers).
    pub fn find(&self, trace_id: u64) -> Option<TraceRecord> {
        for shard in &self.shards {
            let guard = shard.lock().expect("recorder shard lock");
            if let Some(t) = guard
                .recent
                .live()
                .iter()
                .chain(guard.outliers.live().iter())
                .find(|t| t.trace_id == trace_id)
            {
                return Some(t.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{KernelPath, Span, Stage};

    fn record(trace_id: u64, end_ns: u64, ok: bool) -> TraceRecord {
        TraceRecord {
            trace_id,
            end_ns,
            start_ns: end_ns.saturating_sub(1_000),
            ok,
            backend: "scalar",
            spans: vec![Span {
                stage: Stage::QueueWait,
                layer: None,
                start_ns: end_ns.saturating_sub(1_000),
                end_ns,
                kernel: KernelPath::None,
                density: 0.0,
            }],
            ..TraceRecord::default()
        }
    }

    #[test]
    fn recent_returns_newest_first_and_respects_the_cap() {
        let rec = FlightRecorder::new(RecorderConfig {
            shards: 2,
            recent_capacity: 8,
            outlier_capacity: 4,
            slow_threshold_ns: 0,
        });
        for i in 0..10u64 {
            rec.record((i % 2) as usize, &record(i, i * 100, true));
        }
        let got = rec.recent(4);
        assert_eq!(got.len(), 4);
        let ids: Vec<u64> = got.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![9, 8, 7, 6]);
    }

    #[test]
    fn ring_eviction_keeps_only_the_last_capacity_entries() {
        let rec = FlightRecorder::new(RecorderConfig {
            shards: 1,
            recent_capacity: 3,
            outlier_capacity: 0,
            slow_threshold_ns: 0,
        });
        for i in 0..7u64 {
            rec.record(0, &record(i, i, true));
        }
        let got = rec.recent(10);
        let ids: Vec<u64> = got.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![6, 5, 4]);
        assert!(rec.find(3).is_none());
        assert_eq!(rec.find(6).unwrap().trace_id, 6);
    }

    #[test]
    fn failed_and_slow_requests_survive_as_outliers() {
        let rec = FlightRecorder::new(RecorderConfig {
            shards: 1,
            recent_capacity: 2,
            outlier_capacity: 4,
            slow_threshold_ns: 1_500,
        });
        // A failure and a slow success, then enough healthy (1 µs) traffic
        // to evict both from the recent ring.
        rec.record(0, &record(100, 10, false));
        let mut slow = record(101, 2_000, true);
        slow.start_ns = 0; // 2 µs long >= 1.5 µs threshold
        rec.record(0, &slow);
        for i in 0..5u64 {
            rec.record(0, &record(i, 10_000 + i, true));
        }
        let got = rec.recent(2);
        let ids: Vec<u64> = got.iter().map(|t| t.trace_id).collect();
        assert_eq!(&ids[..2], &[4, 3], "recency cut");
        assert!(ids.contains(&100), "failed outlier retained: {ids:?}");
        assert!(ids.contains(&101), "slow outlier retained: {ids:?}");
    }

    #[test]
    fn spans_survive_the_copy_into_the_ring() {
        let rec = FlightRecorder::new(RecorderConfig::default());
        rec.record(0, &record(1, 1_000, true));
        let got = rec.find(1).unwrap();
        assert_eq!(got.spans.len(), 1);
        assert_eq!(got.spans[0].stage, Stage::QueueWait);
        assert_eq!(got.backend, "scalar");
    }
}
