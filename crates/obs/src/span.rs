//! The span taxonomy: every microsecond of a served request is attributed
//! to exactly one [`Stage`], and a request's full timeline is a
//! [`TraceRecord`] — a flat list of [`Span`]s that tile the interval from
//! enqueue to reply.

/// The pipeline stage a [`Span`] is attributed to. Stages are ordered the
/// way a request experiences them; per-layer stages (encode, noise, decode,
/// simulate) repeat once per network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// From request admission to the worker sealing the batch it rides in.
    QueueWait,
    /// From batch seal to this request's own simulation starting: input
    /// flattening plus the simulation time of earlier batch companions.
    BatchAssembly,
    /// Analog-to-spike conversion of a layer's input vector.
    Encode,
    /// Synaptic-noise corruption of the transmitted raster.
    Noise,
    /// Spike-to-analog PSC decode of the received raster.
    Decode,
    /// The layer forward pass (dense or sparse kernel).
    Simulate,
    /// From simulation end to the reply being recorded: logits copy and
    /// response construction.
    ReplySerialize,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::Encode,
        Stage::Noise,
        Stage::Decode,
        Stage::Simulate,
        Stage::ReplySerialize,
    ];

    /// Stable single-byte code (the binary wire encoding).
    pub fn code(self) -> u8 {
        match self {
            Stage::QueueWait => 0,
            Stage::BatchAssembly => 1,
            Stage::Encode => 2,
            Stage::Noise => 3,
            Stage::Decode => 4,
            Stage::Simulate => 5,
            Stage::ReplySerialize => 6,
        }
    }

    /// Inverse of [`Stage::code`].
    pub fn from_code(code: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Stable snake_case name (the JSON wire encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Encode => "encode",
            Stage::Noise => "noise",
            Stage::Decode => "decode",
            Stage::Simulate => "simulate",
            Stage::ReplySerialize => "reply_serialize",
        }
    }

    /// Inverse of [`Stage::as_str`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.as_str() == name)
    }
}

/// Which matrix kernel a [`Stage::Simulate`] span took; `None` for stages
/// where the question does not apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Not a kernel-dispatching stage.
    None,
    /// Dense forward: every column scanned.
    Dense,
    /// Sparse gather: only the active column set touched.
    Sparse,
}

impl KernelPath {
    /// Stable single-byte code (the binary wire encoding).
    pub fn code(self) -> u8 {
        match self {
            KernelPath::None => 0,
            KernelPath::Dense => 1,
            KernelPath::Sparse => 2,
        }
    }

    /// Inverse of [`KernelPath::code`].
    pub fn from_code(code: u8) -> Option<KernelPath> {
        match code {
            0 => Some(KernelPath::None),
            1 => Some(KernelPath::Dense),
            2 => Some(KernelPath::Sparse),
            _ => None,
        }
    }

    /// Stable name for the JSON encoding; `None` when not applicable.
    pub fn as_str(self) -> Option<&'static str> {
        match self {
            KernelPath::None => None,
            KernelPath::Dense => Some("dense"),
            KernelPath::Sparse => Some("sparse"),
        }
    }
}

/// One timed interval of a request's life, attributed to a [`Stage`].
/// Timestamps are nanoseconds since the owning clock's epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// What the time was spent on.
    pub stage: Stage,
    /// Network layer index for per-layer stages; `None` for request-level
    /// stages (queue wait, batch assembly, reply serialization).
    pub layer: Option<u32>,
    /// Span start, ns since epoch.
    pub start_ns: u64,
    /// Span end, ns since epoch (`>= start_ns`).
    pub end_ns: u64,
    /// Kernel taken by a simulate span; [`KernelPath::None`] otherwise.
    pub kernel: KernelPath,
    /// Measured raster density the kernel decision saw; `0.0` for
    /// non-simulate spans.
    pub density: f32,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The full recorded timeline of one request: identity, outcome, and the
/// spans that tile `start_ns..end_ns`.
///
/// `Default` produces an empty record whose `spans` buffer can be reused —
/// the flight recorder preallocates rings of these and refills them with
/// [`TraceRecord::copy_from`], which allocates nothing once the buffer has
/// grown to the workload's span count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecord {
    /// Server-unique request id (also carried in the reply).
    pub trace_id: u64,
    /// Model registry index (resolved to a name at the protocol edge).
    pub model: u32,
    /// The request's seed.
    pub seed: u64,
    /// Worker thread that served the request.
    pub worker: u32,
    /// Request admission time, ns since the metrics epoch.
    pub start_ns: u64,
    /// Reply completion time, ns since the metrics epoch.
    pub end_ns: u64,
    /// Whether the request produced a successful reply.
    pub ok: bool,
    /// Active SIMD backend name (`"scalar"`, `"sse2"`, `"avx2"`).
    pub backend: &'static str,
    /// The per-stage breakdown, in chronological order.
    pub spans: Vec<Span>,
    /// Spans discarded because the staging buffer hit its cap (0 in
    /// practice; nonzero flags a truncated timeline to consumers).
    pub dropped_spans: u32,
}

impl TraceRecord {
    /// End-to-end duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Overwrites `self` with `other`, reusing the span buffer: `clear` +
    /// `extend_from_slice`, so no allocation once capacity suffices. (The
    /// derived `clone_from` would reallocate the span `Vec` every call.)
    pub fn copy_from(&mut self, other: &TraceRecord) {
        self.trace_id = other.trace_id;
        self.model = other.model;
        self.seed = other.seed;
        self.worker = other.worker;
        self.start_ns = other.start_ns;
        self.end_ns = other.end_ns;
        self.ok = other.ok;
        self.backend = other.backend;
        self.spans.clear();
        self.spans.extend_from_slice(&other.spans);
        self.dropped_spans = other.dropped_spans;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_and_names_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
            assert_eq!(Stage::from_name(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::from_code(7), None);
        assert_eq!(Stage::from_name("warp_drive"), None);
    }

    #[test]
    fn kernel_codes_round_trip() {
        for kernel in [KernelPath::None, KernelPath::Dense, KernelPath::Sparse] {
            assert_eq!(KernelPath::from_code(kernel.code()), Some(kernel));
        }
        assert_eq!(KernelPath::from_code(3), None);
        assert_eq!(KernelPath::Dense.as_str(), Some("dense"));
        assert_eq!(KernelPath::None.as_str(), None);
    }

    #[test]
    fn copy_from_reuses_the_span_buffer() {
        let source = TraceRecord {
            trace_id: 7,
            spans: vec![
                Span {
                    stage: Stage::QueueWait,
                    layer: None,
                    start_ns: 0,
                    end_ns: 10,
                    kernel: KernelPath::None,
                    density: 0.0,
                };
                4
            ],
            ..TraceRecord::default()
        };
        let mut slot = TraceRecord::default();
        slot.spans.reserve(4);
        let capacity = slot.spans.capacity();
        slot.copy_from(&source);
        assert_eq!(slot, source);
        assert_eq!(slot.spans.capacity(), capacity);
        assert_eq!(slot.spans[0].duration_ns(), 10);
    }
}
