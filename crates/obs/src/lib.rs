//! # nrsnn-obs
//!
//! Std-only observability primitives for the NRSNN serving stack: a
//! monotonic [`clock`] abstraction, log-linear HDR-style
//! [histograms](crate::hist) with p50/p99/p999 at bounded memory, per-worker
//! **sharded** metric sinks that are aggregated only at snapshot time, and a
//! preallocated ring-buffer [flight recorder](crate::recorder) holding the
//! last N per-stage request timelines (plus slow/failed outliers).
//!
//! ## Design constraints
//!
//! The serving hot path records into these sinks on **every** request, so
//! everything here is built around three rules:
//!
//! 1. **No contention on the record path.** Counters and histograms are
//!    sharded per worker; a record touches only its own shard's atomics
//!    (`Relaxed` ordering — these are statistics, not synchronisation).
//!    Aggregation across shards happens once, at snapshot time.
//! 2. **Zero steady-state allocations.** The flight recorder copies spans
//!    into preallocated ring slots with `clear()` + `extend_from_slice()`;
//!    after warm-up no recording path allocates (pinned by the workspace's
//!    `alloc_regression` integration test).
//! 3. **Determinism is untouchable.** Nothing in this crate reads or
//!    advances an RNG, so instrumentation can never perturb a simulation
//!    result — replies stay bit-identical with observability on, off, or
//!    concurrently scraped.
//!
//! ## Histogram precision
//!
//! The latency histograms are log-linear: each power-of-two octave is split
//! into 32 linear sub-buckets, so any recorded value is reported with at
//! most ~3% relative error while the whole `u64` range fits in a fixed
//! 1920-bucket table (15 KiB per shard). Values below 32 are exact.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clock;
pub mod hist;
pub mod recorder;
mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, ShardedHistogram, NUM_BUCKETS};
pub use recorder::{FlightRecorder, RecorderConfig};
pub use span::{KernelPath, Span, Stage, TraceRecord};

use std::sync::atomic::{AtomicU64, Ordering};

/// One cache-line-padded counter cell, so adjacent shards never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing counter sharded across workers: each worker
/// adds to its own cache-line-padded cell with `Relaxed` ordering, and
/// [`ShardedCounter::total`] sums the cells at snapshot time.
///
/// ```
/// let c = nrsnn_obs::ShardedCounter::new(2);
/// c.incr(0);
/// c.add(1, 41);
/// assert_eq!(c.total(), 42);
/// ```
#[derive(Debug)]
pub struct ShardedCounter {
    cells: Box<[PaddedCell]>,
}

impl ShardedCounter {
    /// Creates a counter with `shards` independent cells (at least one).
    pub fn new(shards: usize) -> Self {
        let cells = (0..shards.max(1)).map(|_| PaddedCell::default()).collect();
        ShardedCounter { cells }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// Adds `n` to shard `shard`'s cell.
    ///
    /// # Panics
    /// Panics if `shard` is out of range — shard indices come from the
    /// worker pool, so an out-of-range index is a plumbing bug.
    pub fn add(&self, shard: usize, n: u64) {
        // ORDERING: Relaxed — per-shard monotone counter; no payload is
        // published through it, so no ordering edge is needed.
        self.cells[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to shard `shard`'s cell.
    pub fn incr(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Sum over all shards (snapshot-time aggregation).
    pub fn total(&self) -> u64 {
        // ORDERING: Relaxed — merge path; summing monotone counters may
        // miss in-flight adds, which advisory totals tolerate.
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_aggregate_at_snapshot() {
        let c = ShardedCounter::new(4);
        assert_eq!(c.shards(), 4);
        for shard in 0..4 {
            for _ in 0..=shard {
                c.incr(shard);
            }
        }
        assert_eq!(c.total(), 1 + 2 + 3 + 4);
    }

    #[test]
    fn zero_shards_clamp_to_one() {
        let c = ShardedCounter::new(0);
        c.incr(0);
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let c = std::sync::Arc::new(ShardedCounter::new(3));
        let handles: Vec<_> = (0..3)
            .map(|shard| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr(shard);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 30_000);
    }
}
