//! Log-linear HDR-style histograms: bounded memory, ~3% relative error,
//! lock-free sharded recording.
//!
//! Each power-of-two octave of the `u64` range is split into
//! 2^`SUB_BITS` = 32 linear sub-buckets; values below 32 get one bucket
//! each (exact). A reported percentile is the **inclusive upper bound** of
//! the bucket holding the requested rank, so it is always an upper bound on
//! the true order statistic and overshoots by at most one sub-bucket width
//! — a relative error of at most `1/32` ≈ 3.1%.
//!
//! This replaces the serving layer's original octave-only buckets, whose
//! p50/p99 could overshoot by almost 2x (a full octave).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per octave (and width of the exact low range).
const SUBS: usize = 1 << SUB_BITS;
/// Octaves above the exact range: the most significant bit of a `u64` value
/// `>= 32` lies in `5..=63`, one octave per position.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count covering the whole `u64` range with no clamping.
pub const NUM_BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// Bucket index of `value`: identity below 32, log-linear above.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS;
    // `value >> octave` is in [32, 64): the top 6 bits select the sub-bucket.
    let sub = (value >> octave) as usize - SUBS;
    SUBS + octave as usize * SUBS + sub
}

/// Inclusive upper bound of bucket `index` — the value a percentile query
/// reports for ranks landing in that bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = (index - SUBS) / SUBS;
    let sub = (index - SUBS) % SUBS;
    // The last octave's top bucket bound is 2^64 - 1; go through u128 so
    // the intermediate `64 << 58` does not overflow.
    let exclusive = ((SUBS + sub + 1) as u128) << octave;
    (exclusive - 1).min(u64::MAX as u128) as u64
}

/// A single-threaded log-linear histogram: the aggregation target of
/// [`ShardedHistogram::snapshot`] and the unit the percentile math runs on.
///
/// ```
/// let mut h = nrsnn_obs::Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let p50 = h.value_at_quantile(0.50);
/// assert!((50..=52).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram (allocates its full fixed bucket table).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values (for exact means).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of the recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (e.g. `0.999` for p999): the
    /// inclusive ceiling of the bucket containing rank `ceil(q * count)`.
    /// Returns `0` when empty, so pre-traffic snapshots stay well-defined
    /// zeros.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(index);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A log-linear histogram sharded across workers: each worker records into
/// its own bucket table with `Relaxed` atomics (no locks, no cross-shard
/// traffic on the hot path); [`ShardedHistogram::snapshot`] merges the
/// shards into one [`Histogram`] for percentile queries.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: Vec<HistShard>,
}

#[derive(Debug)]
struct HistShard {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }
}

impl ShardedHistogram {
    /// Creates a histogram with `shards` independent bucket tables (at
    /// least one).
    pub fn new(shards: usize) -> Self {
        ShardedHistogram {
            shards: (0..shards.max(1)).map(|_| HistShard::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records `value` into shard `shard`: two `Relaxed` atomic adds.
    ///
    /// # Panics
    /// Panics if `shard` is out of range (a worker-plumbing bug).
    pub fn record(&self, shard: usize, value: u64) {
        let s = &self.shards[shard];
        // ORDERING: Relaxed — per-shard monotone counters on the request
        // hot path; nothing is published through them, and the snapshot
        // below tolerates tearing between buckets and sum (stats are
        // advisory, never part of a reply).
        s.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — same hot-path argument as the bucket add.
        s.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Merges all shards into one [`Histogram`] (the only cross-shard
    /// operation; runs at stats-scrape time, never on the request path).
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.shards {
            for (index, bucket) in shard.buckets.iter().enumerate() {
                // ORDERING: Relaxed — merge path; each cell is a monotone
                // counter and the scrape may observe a mid-flight record
                // (count without sum or vice versa), which only skews an
                // advisory statistic by one in-flight event.
                let count = bucket.load(Ordering::Relaxed);
                out.buckets[index] += count;
                out.count += count;
            }
            // ORDERING: Relaxed — same merge-path argument as above.
            out.sum = out.sum.saturating_add(shard.sum.load(Ordering::Relaxed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_below_32_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn upper_bounds_overshoot_by_at_most_one_thirtysecond() {
        // Sweep values across many octaves; the reported bound must be
        // >= the value and within 1/32 relative error.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for value in [v, v + v / 3, v * 2 - 1] {
                let bound = bucket_upper_bound(bucket_index(value));
                assert!(bound >= value, "bound {bound} < value {value}");
                let slack = bound - value;
                assert!(
                    (slack as f64) <= (value as f64) / 32.0 + 1.0,
                    "value {value} reported as {bound}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn bucket_indices_are_monotonic_and_in_range() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v != 0 {
            let idx = bucket_index(v);
            assert!(idx >= prev && idx < NUM_BUCKETS, "v={v} idx={idx}");
            prev = idx;
            v = v.wrapping_mul(2);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_walk_the_rank_order() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.value_at_quantile(0.50);
        let p99 = h.value_at_quantile(0.99);
        let p999 = h.value_at_quantile(0.999);
        assert!((500..=516).contains(&p50), "p50={p50}");
        assert!((990..=1023).contains(&p99), "p99={p99}");
        assert!((999..=1023).contains(&p999), "p999={p999}");
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.value_at_quantile(0.999), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in [1u64, 5, 40, 1000, 123_456] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 70, 9999] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn sharded_snapshot_matches_serial_recording() {
        let sharded = ShardedHistogram::new(3);
        let mut serial = Histogram::new();
        for (i, v) in [3u64, 33, 333, 3_333, 33_333, 333_333].iter().enumerate() {
            sharded.record(i % 3, *v);
            serial.record(*v);
        }
        assert_eq!(sharded.snapshot(), serial);
    }

    #[test]
    fn tail_outlier_shows_up_only_past_its_rank() {
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(1_000_000);
        assert!(h.value_at_quantile(0.50) < 110);
        assert!(h.value_at_quantile(0.99) < 110);
        assert!(h.value_at_quantile(0.9995) >= 1_000_000);
    }
}
