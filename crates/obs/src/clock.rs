//! Monotonic clock abstraction: wall-clock-free timestamps as nanoseconds
//! since a process-local epoch.
//!
//! Every span and trace timestamp in this crate is a `u64` nanosecond offset
//! from one [`MonotonicClock`]'s epoch (the instant the server's metrics
//! were created). Offsets are comparable across threads, cheap to ship over
//! the wire, and — unlike wall-clock time — immune to NTP steps. 2^64
//! nanoseconds is ~584 years of uptime, so saturation is theoretical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Source of nanosecond timestamps. The serving stack is generic over this
/// only at the test boundary: production code uses [`MonotonicClock`],
/// histogram/recorder tests use [`ManualClock`] for reproducible inputs.
pub trait Clock {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// A monotonic clock anchored at the [`Instant`] it was created.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }

    /// The anchoring instant.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Converts an [`Instant`] captured elsewhere (e.g. a request's enqueue
    /// time) into nanoseconds since this clock's epoch. Instants before the
    /// epoch saturate to zero rather than panicking.
    pub fn ns_since_epoch(&self, at: Instant) -> u64 {
        let nanos = at.saturating_duration_since(self.epoch).as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.ns_since_epoch(Instant::now())
    }
}

/// A hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        ManualClock {
            now_ns: AtomicU64::new(start_ns),
        }
    }

    /// Advances the reading by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        // ORDERING: Relaxed — the counter is the only shared state; tests
        // that advance and read across threads order those accesses with
        // their own join/channel synchronisation.
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        // ORDERING: Relaxed — a lone monotone counter; readers need a
        // recent value, not an ordering edge with other memory.
        self.now_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn instants_before_the_epoch_saturate_to_zero() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let clock = MonotonicClock::new();
        assert_eq!(clock.ns_since_epoch(early), 0);
        assert_eq!(clock.ns_since_epoch(clock.epoch()), 0);
    }

    #[test]
    fn manual_clock_is_hand_cranked() {
        let clock = ManualClock::new(5);
        assert_eq!(clock.now_ns(), 5);
        clock.advance(37);
        assert_eq!(clock.now_ns(), 42);
    }
}
