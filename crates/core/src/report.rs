//! Report formatting: renders sweep results in the shape of the paper's
//! figures (accuracy-vs-noise series) and tables (Table I and Table II).

use nrsnn_snn::CodingKind;
use serde::{Deserialize, Serialize};

use crate::experiment::{series_for, SweepPoint};

/// Formats a sweep as a text table with one row per coding and one column
/// per noise level — the textual equivalent of one of the paper's figures.
pub fn format_sweep_table(points: &[SweepPoint], x_label: &str) -> String {
    let mut codings: Vec<CodingKind> = Vec::new();
    for p in points {
        if !codings.contains(&p.coding) {
            codings.push(p.coding);
        }
    }
    let mut levels: Vec<f64> = points.iter().map(|p| p.noise_level).collect();
    levels.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    levels.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut out = String::new();
    out.push_str(&format!("{x_label:<14}"));
    for level in &levels {
        out.push_str(&format!("{level:>9.2}"));
    }
    out.push('\n');
    for coding in &codings {
        let ws = points
            .iter()
            .find(|p| p.coding == *coding)
            .map(|p| p.weight_scaled)
            .unwrap_or(false);
        let label = if ws {
            format!("{}+WS", coding.label())
        } else {
            coding.label()
        };
        out.push_str(&format!("{label:<14}"));
        let series = series_for(points, *coding);
        for level in &levels {
            match series.iter().find(|(l, _)| (l - level).abs() < 1e-12) {
                Some((_, acc)) => out.push_str(&format!("{acc:>8.2}%")),
                None => out.push_str(&format!("{:>9}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// One row of Table I (deletion noise): accuracy and spike counts at the
/// paper's reporting points (clean, 0.2, 0.5, 0.8) plus averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dataset name ("mnist-like", …).
    pub dataset: String,
    /// Method label ("Rate+WS", "TTAS(5)+WS", …).
    pub method: String,
    /// Accuracy (%) at each reported deletion probability, in order.
    pub accuracies: Vec<f32>,
    /// Mean spikes per inference at each reported deletion probability.
    pub spikes: Vec<f32>,
}

impl Table1Row {
    /// Average accuracy over the noisy points (the paper averages the noisy
    /// columns, excluding the clean one is debatable — we average all
    /// reported points like the published table's "Avg." column).
    pub fn average_accuracy(&self) -> f32 {
        if self.accuracies.is_empty() {
            return 0.0;
        }
        self.accuracies.iter().sum::<f32>() / self.accuracies.len() as f32
    }

    /// Average spike count over the reported points.
    pub fn average_spikes(&self) -> f32 {
        if self.spikes.is_empty() {
            return 0.0;
        }
        self.spikes.iter().sum::<f32>() / self.spikes.len() as f32
    }

    /// Builds a row from sweep points of a single coding.
    pub fn from_points(dataset: &str, points: &[SweepPoint], coding: CodingKind) -> Self {
        let mut filtered: Vec<&SweepPoint> = points.iter().filter(|p| p.coding == coding).collect();
        filtered.sort_by(|a, b| {
            a.noise_level
                .partial_cmp(&b.noise_level)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let method = filtered
            .first()
            .map(|p| p.method_label())
            .unwrap_or_else(|| coding.label());
        Table1Row {
            dataset: dataset.to_string(),
            method,
            accuracies: filtered.iter().map(|p| p.accuracy_percent).collect(),
            spikes: filtered.iter().map(|p| p.mean_spikes).collect(),
        }
    }
}

// Hand-written serialization for the machine-readable results dump (the
// derive on the row types is a no-op under the offline shims — see
// shims/README.md).
impl Serialize for Table1Row {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("dataset".to_string(), self.dataset.to_value()),
            ("method".to_string(), self.method.to_value()),
            ("accuracies".to_string(), self.accuracies.to_value()),
            ("spikes".to_string(), self.spikes.to_value()),
        ])
    }
}

/// Formats Table I: experimental results of spike deletion with accuracy and
/// spike counts per method and dataset.
pub fn format_table1(rows: &[Table1Row], levels: &[f64]) -> String {
    let mut out = String::new();
    out.push_str("TABLE I: spike deletion — accuracy (%) and mean spikes per inference\n");
    out.push_str(&format!("{:<14}{:<14}", "Dataset", "Method"));
    for l in levels {
        if *l == 0.0 {
            out.push_str(&format!("{:>10}", "Clean"));
        } else {
            out.push_str(&format!("{l:>10.1}"));
        }
    }
    out.push_str(&format!("{:>10}", "Avg."));
    out.push_str(&format!("{:>14}\n", "Avg. spikes"));
    for row in rows {
        out.push_str(&format!("{:<14}{:<14}", row.dataset, row.method));
        for a in &row.accuracies {
            out.push_str(&format!("{a:>9.2}%"));
        }
        out.push_str(&format!("{:>9.2}%", row.average_accuracy()));
        out.push_str(&format!("{:>14.3e}\n", row.average_spikes()));
    }
    out
}

/// One row of Table II (jitter noise): accuracy at the paper's reporting
/// points (clean, 1.0, 2.0, 3.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Method label.
    pub method: String,
    /// Accuracy (%) at each reported jitter intensity, in order.
    pub accuracies: Vec<f32>,
}

impl Table2Row {
    /// Average accuracy over the reported points.
    pub fn average_accuracy(&self) -> f32 {
        if self.accuracies.is_empty() {
            return 0.0;
        }
        self.accuracies.iter().sum::<f32>() / self.accuracies.len() as f32
    }

    /// Builds a row from sweep points of a single coding.
    pub fn from_points(dataset: &str, points: &[SweepPoint], coding: CodingKind) -> Self {
        let series = series_for(points, coding);
        Table2Row {
            dataset: dataset.to_string(),
            method: coding.label(),
            accuracies: series.iter().map(|(_, a)| *a).collect(),
        }
    }
}

// Hand-written serialization (see the `Table1Row` impl above).
impl Serialize for Table2Row {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("dataset".to_string(), self.dataset.to_value()),
            ("method".to_string(), self.method.to_value()),
            ("accuracies".to_string(), self.accuracies.to_value()),
        ])
    }
}

/// Formats Table II: accuracy of spike jitter per method and dataset.
pub fn format_table2(rows: &[Table2Row], levels: &[f64]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II: spike jitter — accuracy (%)\n");
    out.push_str(&format!("{:<14}{:<14}", "Dataset", "Method"));
    for l in levels {
        if *l == 0.0 {
            out.push_str(&format!("{:>10}", "Clean"));
        } else {
            out.push_str(&format!("{l:>10.1}"));
        }
    }
    out.push_str(&format!("{:>10}\n", "Avg."));
    for row in rows {
        out.push_str(&format!("{:<14}{:<14}", row.dataset, row.method));
        for a in &row.accuracies {
            out.push_str(&format!("{a:>9.2}%"));
        }
        out.push_str(&format!("{:>9.2}%\n", row.average_accuracy()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Guards the hand-written Serialize impls (used by the
    // `table1_table2_report` example's JSON dump) against field drift.
    #[test]
    fn rows_serialize_every_field() {
        let row1 = Table1Row {
            dataset: "mnist-like".to_string(),
            method: "Rate+WS".to_string(),
            accuracies: vec![95.0, 60.0],
            spikes: vec![1000.0, 500.0],
        };
        assert_eq!(
            serde_json::to_string(&row1).unwrap(),
            r#"{"dataset":"mnist-like","method":"Rate+WS","accuracies":[95,60],"spikes":[1000,500]}"#
        );
        let row2 = Table2Row {
            dataset: "cifar10-like".to_string(),
            method: "TTAS(5)".to_string(),
            accuracies: vec![93.0],
        };
        assert_eq!(
            serde_json::to_string(&row2).unwrap(),
            r#"{"dataset":"cifar10-like","method":"TTAS(5)","accuracies":[93]}"#
        );
    }

    fn sample_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: true,
                noise_level: 0.0,
                accuracy_percent: 95.0,
                mean_spikes: 1000.0,
            },
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: true,
                noise_level: 0.5,
                accuracy_percent: 60.0,
                mean_spikes: 500.0,
            },
            SweepPoint {
                coding: CodingKind::Ttas(5),
                weight_scaled: true,
                noise_level: 0.0,
                accuracy_percent: 93.0,
                mean_spikes: 50.0,
            },
            SweepPoint {
                coding: CodingKind::Ttas(5),
                weight_scaled: true,
                noise_level: 0.5,
                accuracy_percent: 85.0,
                mean_spikes: 25.0,
            },
        ]
    }

    #[test]
    fn sweep_table_contains_all_methods_and_levels() {
        let table = format_sweep_table(&sample_points(), "Deletion p");
        assert!(table.contains("Rate+WS"));
        assert!(table.contains("TTAS(5)+WS"));
        assert!(table.contains("0.50"));
        assert!(table.contains("85.00%"));
    }

    #[test]
    fn table1_row_statistics() {
        let row = Table1Row::from_points("mnist-like", &sample_points(), CodingKind::Ttas(5));
        assert_eq!(row.method, "TTAS(5)+WS");
        assert_eq!(row.accuracies, vec![93.0, 85.0]);
        assert!((row.average_accuracy() - 89.0).abs() < 1e-5);
        assert!((row.average_spikes() - 37.5).abs() < 1e-5);
    }

    #[test]
    fn table1_formatting_includes_headers_and_rows() {
        let rows = vec![
            Table1Row::from_points("mnist-like", &sample_points(), CodingKind::Rate),
            Table1Row::from_points("mnist-like", &sample_points(), CodingKind::Ttas(5)),
        ];
        let text = format_table1(&rows, &[0.0, 0.5]);
        assert!(text.contains("TABLE I"));
        assert!(text.contains("Clean"));
        assert!(text.contains("Rate+WS"));
        assert!(text.contains("Avg. spikes"));
    }

    #[test]
    fn table2_row_and_formatting() {
        let row = Table2Row::from_points("cifar10-like", &sample_points(), CodingKind::Rate);
        assert_eq!(row.accuracies.len(), 2);
        let text = format_table2(&[row], &[0.0, 0.5]);
        assert!(text.contains("TABLE II"));
        assert!(text.contains("cifar10-like"));
    }

    #[test]
    fn empty_rows_have_zero_averages() {
        let row = Table1Row {
            dataset: "x".to_string(),
            method: "y".to_string(),
            accuracies: vec![],
            spikes: vec![],
        };
        assert_eq!(row.average_accuracy(), 0.0);
        assert_eq!(row.average_spikes(), 0.0);
        let row2 = Table2Row {
            dataset: "x".to_string(),
            method: "y".to_string(),
            accuracies: vec![],
        };
        assert_eq!(row2.average_accuracy(), 0.0);
    }
}
