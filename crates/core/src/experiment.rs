//! Experiment harness: the parameter sweeps behind every figure and table of
//! the paper's evaluation.
//!
//! All sweeps operate on a [`TrainedPipeline`] and return flat lists of
//! [`SweepPoint`]s, which the [`crate::report`] module renders into the
//! paper's figure series and tables.  Each point is deterministic given the
//! sweep seed.
//!
//! ## Execution model
//!
//! A sweep is a `(coding × noise level × sample)` grid of independent SNN
//! simulations.  The [`DeletionSweep`] and [`JitterSweep`] builders fan that
//! grid out over the work-stealing pool from `nrsnn-runtime`; the
//! [`deletion_sweep`] / [`jitter_sweep`] free functions are shorthands that
//! use [`ParallelConfig::auto`] (all cores, or `NRSNN_THREADS` if set).
//! Every sample draws from its own seed-derived RNG stream, so **results
//! are bit-identical for every thread count** — `threads = 1` is the
//! reference serial path, not a different algorithm.
//!
//! Returned points are sorted by `(noise level, coding)` regardless of grid
//! declaration order or task completion order.

use nrsnn_noise::{DeletionNoise, JitterNoise, WeightScaling};
use nrsnn_runtime::ParallelConfig;
use nrsnn_snn::{CodingKind, IdentityTransform, SpikeTransform};
use serde::{Deserialize, Serialize};

use crate::exec::{run_grid, GridPointSpec};
use crate::{NrsnnError, Result, TrainedPipeline};

/// Shared sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Simulation window length per layer.
    pub time_steps: u32,
    /// Number of held-out test samples to evaluate per point.
    pub eval_samples: usize,
    /// Seed for the noise realisations.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            time_steps: 128,
            eval_samples: 64,
            seed: 1234,
        }
    }
}

impl SweepConfig {
    /// Validates the sweep configuration.
    ///
    /// # Errors
    /// Returns [`NrsnnError::InvalidConfig`] for zero time steps or samples.
    pub fn validate(&self) -> Result<()> {
        if self.time_steps == 0 || self.eval_samples == 0 {
            return Err(NrsnnError::InvalidConfig(
                "time_steps and eval_samples must be non-zero".to_string(),
            ));
        }
        Ok(())
    }
}

/// One measured point of a noise sweep (one coding at one noise level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The coding that was simulated.
    pub coding: CodingKind,
    /// Whether weight scaling was applied.
    pub weight_scaled: bool,
    /// The noise level (deletion probability or jitter σ; 0.0 = clean).
    pub noise_level: f64,
    /// Classification accuracy in percent.
    pub accuracy_percent: f32,
    /// Mean number of transmitted spikes per inference.
    pub mean_spikes: f32,
}

impl SweepPoint {
    /// Label combining coding and weight-scaling flag ("TTAS(5)+WS" etc.).
    pub fn method_label(&self) -> String {
        if self.weight_scaled {
            format!("{}+WS", self.coding.label())
        } else {
            self.coding.label()
        }
    }
}

fn noise_for_deletion(probability: f64) -> Result<Box<dyn SpikeTransform>> {
    if probability == 0.0 {
        Ok(Box::new(IdentityTransform))
    } else {
        Ok(Box::new(DeletionNoise::new(probability)?))
    }
}

fn noise_for_jitter(sigma: f64) -> Result<Box<dyn SpikeTransform>> {
    if sigma == 0.0 {
        Ok(Box::new(IdentityTransform))
    } else {
        Ok(Box::new(JitterNoise::new(sigma)?))
    }
}

/// Rejects degenerate deletion-probability grids before any work is
/// scheduled: every `p` must be a finite number in `[0, 1]`, and with
/// weight scaling enabled additionally `p < 1` — `C = 1/(1−p)` diverges at
/// `p = 1`, which the builder previously papered over by silently skipping
/// the compensation.
fn validate_deletion_levels(probabilities: &[f64], weight_scaling: bool) -> Result<()> {
    for &p in probabilities {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(NrsnnError::InvalidConfig(format!(
                "deletion probability must be a finite number in [0, 1], got {p}"
            )));
        }
        if weight_scaling && p >= 1.0 {
            return Err(NrsnnError::InvalidConfig(format!(
                "weight scaling requires deletion probability < 1 \
                 (the compensation factor C = 1/(1-p) diverges), got {p}"
            )));
        }
    }
    Ok(())
}

/// Rejects degenerate jitter grids: every `σ` must be finite and
/// non-negative (a negative σ previously slipped through as a silent
/// identity transform instead of an error).
fn validate_jitter_levels(sigmas: &[f64]) -> Result<()> {
    for &sigma in sigmas {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(NrsnnError::InvalidConfig(format!(
                "jitter sigma must be a finite non-negative number, got {sigma}"
            )));
        }
    }
    Ok(())
}

/// Builder for a spike-deletion sweep (Figs. 2, 4, 7 and Table I).
///
/// ```no_run
/// use nrsnn::prelude::*;
///
/// # fn main() -> Result<(), nrsnn::NrsnnError> {
/// let pipeline = TrainedPipeline::build(&PipelineConfig::mnist_small())?;
/// let points = DeletionSweep::new(&CodingKind::baselines(), &[0.0, 0.2, 0.5])
///     .weight_scaling(true)
///     .config(SweepConfig::default())
///     .parallel(ParallelConfig::with_threads(4))
///     .run(&pipeline)?;
/// assert_eq!(points.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeletionSweep {
    codings: Vec<CodingKind>,
    probabilities: Vec<f64>,
    weight_scaling: bool,
    config: SweepConfig,
    parallel: ParallelConfig,
}

impl DeletionSweep {
    /// Creates a sweep over the given codings and deletion probabilities
    /// (no weight scaling, default [`SweepConfig`], auto parallelism).
    pub fn new(codings: &[CodingKind], probabilities: &[f64]) -> Self {
        DeletionSweep {
            codings: codings.to_vec(),
            probabilities: probabilities.to_vec(),
            weight_scaling: false,
            config: SweepConfig::default(),
            parallel: ParallelConfig::auto(),
        }
    }

    /// Enables the paper's weight-scaling compensation: each noise level `p`
    /// uses the matching factor `C = 1/(1−p)`.
    #[must_use]
    pub fn weight_scaling(mut self, enabled: bool) -> Self {
        self.weight_scaling = enabled;
        self
    }

    /// Sets the shared sweep parameters (window, sample count, seed).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets how the `(coding × probability × sample)` grid is distributed
    /// over worker threads.  Results do not depend on this choice.
    #[must_use]
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs the sweep, returning one [`SweepPoint`] per grid point sorted by
    /// `(noise level, coding)`.
    ///
    /// # Errors
    /// Returns [`NrsnnError::InvalidConfig`] for an empty coding list, for
    /// probabilities outside `[0, 1]` (or `NaN`), and — with weight scaling
    /// enabled — for `p = 1`, where `C = 1/(1−p)` diverges; propagates
    /// conversion/simulation errors.
    pub fn run(&self, pipeline: &TrainedPipeline) -> Result<Vec<SweepPoint>> {
        self.config.validate()?;
        if self.codings.is_empty() {
            return Err(NrsnnError::InvalidConfig("no codings selected".to_string()));
        }
        validate_deletion_levels(&self.probabilities, self.weight_scaling)?;
        let mut specs = Vec::with_capacity(self.codings.len() * self.probabilities.len());
        for &coding in &self.codings {
            for &p in &self.probabilities {
                let scaling = if self.weight_scaling && p > 0.0 {
                    WeightScaling::for_deletion_probability(p)?
                } else {
                    WeightScaling::none()
                };
                specs.push(GridPointSpec {
                    coding,
                    noise_level: p,
                    weight_scaled: self.weight_scaling,
                    scaling,
                    noise: noise_for_deletion(p)?,
                });
            }
        }
        run_grid(
            pipeline,
            &specs,
            self.config.time_steps,
            self.config.eval_samples,
            self.config.seed,
            &self.parallel,
        )
    }
}

/// Builder for a spike-jitter sweep (Figs. 3, 6, 8 and Table II).  Jitter
/// does not remove charge, so no weight scaling is applied (matching the
/// paper).
#[derive(Debug, Clone)]
pub struct JitterSweep {
    codings: Vec<CodingKind>,
    sigmas: Vec<f64>,
    config: SweepConfig,
    parallel: ParallelConfig,
}

impl JitterSweep {
    /// Creates a sweep over the given codings and jitter intensities
    /// (default [`SweepConfig`], auto parallelism).
    pub fn new(codings: &[CodingKind], sigmas: &[f64]) -> Self {
        JitterSweep {
            codings: codings.to_vec(),
            sigmas: sigmas.to_vec(),
            config: SweepConfig::default(),
            parallel: ParallelConfig::auto(),
        }
    }

    /// Sets the shared sweep parameters (window, sample count, seed).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets how the `(coding × sigma × sample)` grid is distributed over
    /// worker threads.  Results do not depend on this choice.
    #[must_use]
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Runs the sweep, returning one [`SweepPoint`] per grid point sorted by
    /// `(noise level, coding)`.
    ///
    /// # Errors
    /// Returns [`NrsnnError::InvalidConfig`] for an empty coding list or a
    /// negative/non-finite sigma, and propagates conversion/simulation
    /// errors.
    pub fn run(&self, pipeline: &TrainedPipeline) -> Result<Vec<SweepPoint>> {
        self.config.validate()?;
        if self.codings.is_empty() {
            return Err(NrsnnError::InvalidConfig("no codings selected".to_string()));
        }
        validate_jitter_levels(&self.sigmas)?;
        let mut specs = Vec::with_capacity(self.codings.len() * self.sigmas.len());
        for &coding in &self.codings {
            for &sigma in &self.sigmas {
                specs.push(GridPointSpec {
                    coding,
                    noise_level: sigma,
                    weight_scaled: false,
                    scaling: WeightScaling::none(),
                    noise: noise_for_jitter(sigma)?,
                });
            }
        }
        run_grid(
            pipeline,
            &specs,
            self.config.time_steps,
            self.config.eval_samples,
            self.config.seed,
            &self.parallel,
        )
    }
}

/// Sweeps spike-deletion probabilities for each coding (Figs. 2, 4, 7 and
/// Table I) on an auto-sized thread pool.
///
/// Shorthand for [`DeletionSweep`] with [`ParallelConfig::auto`]; use the
/// builder to pin thread count or batch size.
///
/// # Errors
/// Returns [`NrsnnError::InvalidConfig`] for an empty coding list and
/// propagates conversion/simulation errors.
pub fn deletion_sweep(
    pipeline: &TrainedPipeline,
    codings: &[CodingKind],
    probabilities: &[f64],
    weight_scaling: bool,
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    DeletionSweep::new(codings, probabilities)
        .weight_scaling(weight_scaling)
        .config(*config)
        .run(pipeline)
}

/// Sweeps spike-jitter intensities for each coding (Figs. 3, 6, 8 and
/// Table II) on an auto-sized thread pool.
///
/// Shorthand for [`JitterSweep`] with [`ParallelConfig::auto`]; use the
/// builder to pin thread count or batch size.
///
/// # Errors
/// Returns [`NrsnnError::InvalidConfig`] for an empty coding list and
/// propagates conversion/simulation errors.
pub fn jitter_sweep(
    pipeline: &TrainedPipeline,
    codings: &[CodingKind],
    sigmas: &[f64],
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    JitterSweep::new(codings, sigmas)
        .config(*config)
        .run(pipeline)
}

/// Extracts the series (noise level, accuracy) for one coding from a sweep,
/// sorted by noise level — one curve of a figure.
pub fn series_for(points: &[SweepPoint], coding: CodingKind) -> Vec<(f64, f32)> {
    let mut series: Vec<(f64, f32)> = points
        .iter()
        .filter(|p| p.coding == coding)
        .map(|p| (p.noise_level, p.accuracy_percent))
        .collect();
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    series
}

/// Mean accuracy over all noise levels of one coding (the "Avg." column of
/// Tables I and II).
pub fn average_accuracy(points: &[SweepPoint], coding: CodingKind) -> f32 {
    let series = series_for(points, coding);
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|(_, a)| a).sum::<f32>() / series.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, PipelineConfig};
    use nrsnn_data::DatasetSpec;

    fn tiny_pipeline() -> TrainedPipeline {
        let config = PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(60, 30),
            model: ModelKind::Mlp,
            dropout: 0.1,
            epochs: 5,
            batch_size: 15,
            learning_rate: 2e-3,
            percentile: 99.9,
            seed: 5,
        };
        TrainedPipeline::build(&config).unwrap()
    }

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            time_steps: 48,
            eval_samples: 16,
            seed: 9,
        }
    }

    #[test]
    fn sweep_config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig {
            time_steps: 0,
            ..SweepConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deletion_sweep_produces_one_point_per_combination() {
        let pipeline = tiny_pipeline();
        let points = deletion_sweep(
            &pipeline,
            &[CodingKind::Rate, CodingKind::Ttfs],
            &[0.0, 0.5],
            false,
            &tiny_sweep(),
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.accuracy_percent >= 0.0));
        assert!(points.iter().all(|p| !p.weight_scaled));
    }

    #[test]
    fn empty_codings_rejected() {
        let pipeline = tiny_pipeline();
        assert!(deletion_sweep(&pipeline, &[], &[0.0], false, &tiny_sweep()).is_err());
        assert!(jitter_sweep(&pipeline, &[], &[0.0], &tiny_sweep()).is_err());
    }

    #[test]
    fn degenerate_deletion_levels_rejected_with_typed_errors() {
        let pipeline = tiny_pipeline();
        let codings = [CodingKind::Rate];
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let result = deletion_sweep(&pipeline, &codings, &[0.0, bad], false, &tiny_sweep());
            assert!(
                matches!(result, Err(NrsnnError::InvalidConfig(_))),
                "p = {bad} should be rejected"
            );
        }
        // p = 1 (delete everything) is a valid grid point without weight
        // scaling ...
        assert!(DeletionSweep::new(&codings, &[1.0])
            .config(tiny_sweep())
            .run(&pipeline)
            .is_ok());
        // ... but with weight scaling C = 1/(1-p) diverges: typed error
        // instead of the old silent skip of the compensation.
        let result = DeletionSweep::new(&codings, &[1.0])
            .weight_scaling(true)
            .config(tiny_sweep())
            .run(&pipeline);
        assert!(matches!(result, Err(NrsnnError::InvalidConfig(_))));
    }

    #[test]
    fn degenerate_jitter_levels_rejected_with_typed_errors() {
        let pipeline = tiny_pipeline();
        let codings = [CodingKind::Ttfs];
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            let result = jitter_sweep(&pipeline, &codings, &[bad], &tiny_sweep());
            assert!(
                matches!(result, Err(NrsnnError::InvalidConfig(_))),
                "sigma = {bad} should be rejected"
            );
        }
    }

    #[test]
    fn series_and_average_extraction() {
        let points = vec![
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: false,
                noise_level: 0.5,
                accuracy_percent: 40.0,
                mean_spikes: 10.0,
            },
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: false,
                noise_level: 0.0,
                accuracy_percent: 90.0,
                mean_spikes: 20.0,
            },
            SweepPoint {
                coding: CodingKind::Ttfs,
                weight_scaled: false,
                noise_level: 0.0,
                accuracy_percent: 88.0,
                mean_spikes: 1.0,
            },
        ];
        let series = series_for(&points, CodingKind::Rate);
        assert_eq!(series, vec![(0.0, 90.0), (0.5, 40.0)]);
        assert!((average_accuracy(&points, CodingKind::Rate) - 65.0).abs() < 1e-5);
        assert_eq!(average_accuracy(&points, CodingKind::Ttas(5)), 0.0);
    }

    #[test]
    fn method_label_marks_weight_scaling() {
        let p = SweepPoint {
            coding: CodingKind::Ttas(5),
            weight_scaled: true,
            noise_level: 0.2,
            accuracy_percent: 80.0,
            mean_spikes: 5.0,
        };
        assert_eq!(p.method_label(), "TTAS(5)+WS");
    }

    #[test]
    fn sweeps_are_bit_identical_across_thread_counts() {
        let pipeline = tiny_pipeline();
        let codings = [CodingKind::Rate, CodingKind::Ttfs, CodingKind::Ttas(3)];
        let levels = [0.0, 0.3, 0.6];

        let deletion = |parallel: ParallelConfig| {
            DeletionSweep::new(&codings, &levels)
                .weight_scaling(true)
                .config(tiny_sweep())
                .parallel(parallel)
                .run(&pipeline)
                .unwrap()
        };
        let serial = deletion(ParallelConfig::serial());
        let threaded = deletion(ParallelConfig::with_threads(4));
        let tiny_batches = deletion(ParallelConfig::with_threads(4).with_batch_size(1));
        assert_eq!(serial, threaded);
        assert_eq!(serial, tiny_batches);

        let jitter = |parallel: ParallelConfig| {
            JitterSweep::new(&codings, &[0.0, 1.5])
                .config(tiny_sweep())
                .parallel(parallel)
                .run(&pipeline)
                .unwrap()
        };
        assert_eq!(
            jitter(ParallelConfig::serial()),
            jitter(ParallelConfig::with_threads(4))
        );
    }

    #[test]
    fn free_functions_match_the_serial_builder() {
        // The auto-parallel shorthand must reproduce the serial reference
        // bit for bit, whatever thread count the host machine resolves to.
        let pipeline = tiny_pipeline();
        let codings = [CodingKind::Rate, CodingKind::Ttfs];
        let auto = deletion_sweep(&pipeline, &codings, &[0.0, 0.5], false, &tiny_sweep()).unwrap();
        let serial = DeletionSweep::new(&codings, &[0.0, 0.5])
            .config(tiny_sweep())
            .parallel(ParallelConfig::serial())
            .run(&pipeline)
            .unwrap();
        assert_eq!(auto, serial);
    }

    #[test]
    fn sweep_points_are_sorted_by_noise_level_then_coding() {
        let pipeline = tiny_pipeline();
        // Codings and levels deliberately declared out of order.
        let points = deletion_sweep(
            &pipeline,
            &[CodingKind::Ttas(3), CodingKind::Rate],
            &[0.5, 0.0],
            false,
            &tiny_sweep(),
        )
        .unwrap();
        let keys: Vec<(f64, (u8, u32))> = points
            .iter()
            .map(|p| (p.noise_level, p.coding.order_index()))
            .collect();
        assert_eq!(
            keys,
            vec![
                (0.0, CodingKind::Rate.order_index()),
                (0.0, CodingKind::Ttas(3).order_index()),
                (0.5, CodingKind::Rate.order_index()),
                (0.5, CodingKind::Ttas(3).order_index()),
            ]
        );
    }

    #[test]
    fn jitter_sweep_runs_for_temporal_codings() {
        let pipeline = tiny_pipeline();
        let points = jitter_sweep(
            &pipeline,
            &[CodingKind::Ttfs, CodingKind::Ttas(3)],
            &[0.0, 2.0],
            &tiny_sweep(),
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        // Clean accuracy should be at least as good as heavily jittered
        // accuracy for TTFS.
        let ttfs = series_for(&points, CodingKind::Ttfs);
        assert!(ttfs[0].1 >= ttfs[1].1 - 10.0);
    }
}
