//! Experiment harness: the parameter sweeps behind every figure and table of
//! the paper's evaluation.
//!
//! All sweeps operate on a [`TrainedPipeline`] and return flat lists of
//! [`SweepPoint`]s, which the [`crate::report`] module renders into the
//! paper's figure series and tables.  Each point is deterministic given the
//! sweep seed.

use nrsnn_noise::{DeletionNoise, JitterNoise, WeightScaling};
use nrsnn_snn::{CodingKind, IdentityTransform, SpikeTransform};
use serde::{Deserialize, Serialize};

use crate::{NrsnnError, Result, TrainedPipeline};

/// Shared sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Simulation window length per layer.
    pub time_steps: u32,
    /// Number of held-out test samples to evaluate per point.
    pub eval_samples: usize,
    /// Seed for the noise realisations.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            time_steps: 128,
            eval_samples: 64,
            seed: 1234,
        }
    }
}

impl SweepConfig {
    /// Validates the sweep configuration.
    ///
    /// # Errors
    /// Returns [`NrsnnError::InvalidConfig`] for zero time steps or samples.
    pub fn validate(&self) -> Result<()> {
        if self.time_steps == 0 || self.eval_samples == 0 {
            return Err(NrsnnError::InvalidConfig(
                "time_steps and eval_samples must be non-zero".to_string(),
            ));
        }
        Ok(())
    }
}

/// One measured point of a noise sweep (one coding at one noise level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The coding that was simulated.
    pub coding: CodingKind,
    /// Whether weight scaling was applied.
    pub weight_scaled: bool,
    /// The noise level (deletion probability or jitter σ; 0.0 = clean).
    pub noise_level: f64,
    /// Classification accuracy in percent.
    pub accuracy_percent: f32,
    /// Mean number of transmitted spikes per inference.
    pub mean_spikes: f32,
}

impl SweepPoint {
    /// Label combining coding and weight-scaling flag ("TTAS(5)+WS" etc.).
    pub fn method_label(&self) -> String {
        if self.weight_scaled {
            format!("{}+WS", self.coding.label())
        } else {
            self.coding.label()
        }
    }
}

fn noise_for_deletion(probability: f64) -> Result<Box<dyn SpikeTransform>> {
    if probability <= 0.0 {
        Ok(Box::new(IdentityTransform))
    } else {
        Ok(Box::new(DeletionNoise::new(probability)?))
    }
}

fn noise_for_jitter(sigma: f64) -> Result<Box<dyn SpikeTransform>> {
    if sigma <= 0.0 {
        Ok(Box::new(IdentityTransform))
    } else {
        Ok(Box::new(JitterNoise::new(sigma)?))
    }
}

/// Sweeps spike-deletion probabilities for each coding (Figs. 2, 4, 7 and
/// Table I).
///
/// When `weight_scaling` is `true`, each noise level uses the matching
/// compensation factor `C = 1/(1−p)`, mirroring the paper's WS rows.
///
/// # Errors
/// Returns [`NrsnnError::InvalidConfig`] for an empty coding list and
/// propagates conversion/simulation errors.
pub fn deletion_sweep(
    pipeline: &TrainedPipeline,
    codings: &[CodingKind],
    probabilities: &[f64],
    weight_scaling: bool,
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    config.validate()?;
    if codings.is_empty() {
        return Err(NrsnnError::InvalidConfig("no codings selected".to_string()));
    }
    let mut points = Vec::with_capacity(codings.len() * probabilities.len());
    for &coding in codings {
        for &p in probabilities {
            let scaling = if weight_scaling && p > 0.0 && p < 1.0 {
                WeightScaling::for_deletion_probability(p)?
            } else {
                WeightScaling::none()
            };
            let noise = noise_for_deletion(p)?;
            let summary = pipeline.evaluate_snn(
                coding,
                config.time_steps,
                noise.as_ref(),
                &scaling,
                config.eval_samples,
                config.seed,
            )?;
            points.push(SweepPoint {
                coding,
                weight_scaled: weight_scaling,
                noise_level: p,
                accuracy_percent: summary.accuracy_percent(),
                mean_spikes: summary.mean_spikes_per_sample,
            });
        }
    }
    Ok(points)
}

/// Sweeps spike-jitter intensities for each coding (Figs. 3, 6, 8 and
/// Table II).  Jitter does not remove charge, so no weight scaling is
/// applied (matching the paper).
///
/// # Errors
/// Returns [`NrsnnError::InvalidConfig`] for an empty coding list and
/// propagates conversion/simulation errors.
pub fn jitter_sweep(
    pipeline: &TrainedPipeline,
    codings: &[CodingKind],
    sigmas: &[f64],
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>> {
    config.validate()?;
    if codings.is_empty() {
        return Err(NrsnnError::InvalidConfig("no codings selected".to_string()));
    }
    let mut points = Vec::with_capacity(codings.len() * sigmas.len());
    for &coding in codings {
        for &sigma in sigmas {
            let noise = noise_for_jitter(sigma)?;
            let summary = pipeline.evaluate_snn(
                coding,
                config.time_steps,
                noise.as_ref(),
                &WeightScaling::none(),
                config.eval_samples,
                config.seed,
            )?;
            points.push(SweepPoint {
                coding,
                weight_scaled: false,
                noise_level: sigma,
                accuracy_percent: summary.accuracy_percent(),
                mean_spikes: summary.mean_spikes_per_sample,
            });
        }
    }
    Ok(points)
}

/// Extracts the series (noise level, accuracy) for one coding from a sweep,
/// sorted by noise level — one curve of a figure.
pub fn series_for(points: &[SweepPoint], coding: CodingKind) -> Vec<(f64, f32)> {
    let mut series: Vec<(f64, f32)> = points
        .iter()
        .filter(|p| p.coding == coding)
        .map(|p| (p.noise_level, p.accuracy_percent))
        .collect();
    series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    series
}

/// Mean accuracy over all noise levels of one coding (the "Avg." column of
/// Tables I and II).
pub fn average_accuracy(points: &[SweepPoint], coding: CodingKind) -> f32 {
    let series = series_for(points, coding);
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|(_, a)| a).sum::<f32>() / series.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, PipelineConfig};
    use nrsnn_data::DatasetSpec;

    fn tiny_pipeline() -> TrainedPipeline {
        let config = PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(60, 30),
            model: ModelKind::Mlp,
            dropout: 0.1,
            epochs: 5,
            batch_size: 15,
            learning_rate: 2e-3,
            percentile: 99.9,
            seed: 5,
        };
        TrainedPipeline::build(&config).unwrap()
    }

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            time_steps: 48,
            eval_samples: 16,
            seed: 9,
        }
    }

    #[test]
    fn sweep_config_validation() {
        assert!(SweepConfig::default().validate().is_ok());
        assert!(SweepConfig {
            time_steps: 0,
            ..SweepConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deletion_sweep_produces_one_point_per_combination() {
        let pipeline = tiny_pipeline();
        let points = deletion_sweep(
            &pipeline,
            &[CodingKind::Rate, CodingKind::Ttfs],
            &[0.0, 0.5],
            false,
            &tiny_sweep(),
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.accuracy_percent >= 0.0));
        assert!(points.iter().all(|p| !p.weight_scaled));
    }

    #[test]
    fn empty_codings_rejected() {
        let pipeline = tiny_pipeline();
        assert!(deletion_sweep(&pipeline, &[], &[0.0], false, &tiny_sweep()).is_err());
        assert!(jitter_sweep(&pipeline, &[], &[0.0], &tiny_sweep()).is_err());
    }

    #[test]
    fn series_and_average_extraction() {
        let points = vec![
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: false,
                noise_level: 0.5,
                accuracy_percent: 40.0,
                mean_spikes: 10.0,
            },
            SweepPoint {
                coding: CodingKind::Rate,
                weight_scaled: false,
                noise_level: 0.0,
                accuracy_percent: 90.0,
                mean_spikes: 20.0,
            },
            SweepPoint {
                coding: CodingKind::Ttfs,
                weight_scaled: false,
                noise_level: 0.0,
                accuracy_percent: 88.0,
                mean_spikes: 1.0,
            },
        ];
        let series = series_for(&points, CodingKind::Rate);
        assert_eq!(series, vec![(0.0, 90.0), (0.5, 40.0)]);
        assert!((average_accuracy(&points, CodingKind::Rate) - 65.0).abs() < 1e-5);
        assert_eq!(average_accuracy(&points, CodingKind::Ttas(5)), 0.0);
    }

    #[test]
    fn method_label_marks_weight_scaling() {
        let p = SweepPoint {
            coding: CodingKind::Ttas(5),
            weight_scaled: true,
            noise_level: 0.2,
            accuracy_percent: 80.0,
            mean_spikes: 5.0,
        };
        assert_eq!(p.method_label(), "TTAS(5)+WS");
    }

    #[test]
    fn jitter_sweep_runs_for_temporal_codings() {
        let pipeline = tiny_pipeline();
        let points = jitter_sweep(
            &pipeline,
            &[CodingKind::Ttfs, CodingKind::Ttas(3)],
            &[0.0, 2.0],
            &tiny_sweep(),
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        // Clean accuracy should be at least as good as heavily jittered
        // accuracy for TTFS.
        let ttfs = series_for(&points, CodingKind::Ttfs);
        assert!(ttfs[0].1 >= ttfs[1].1 - 10.0);
    }
}
