//! The paper's proposed noise-robust deep SNN: TTAS coding + weight scaling.

use nrsnn_noise::{DeletionNoise, JitterNoise, WeightScaling};
use nrsnn_runtime::ParallelConfig;
use nrsnn_snn::{
    CodingConfig, CodingKind, EvaluationSummary, SnnNetwork, SpikeTransform, TtasCoding,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{NrsnnError, Result, TrainedPipeline};

/// Builder for the noise-robust configuration proposed in §IV of the paper:
/// a converted deep SNN that uses TTAS coding with burst duration `t_a` and
/// weight scaling matched to the expected deletion probability.
///
/// ```no_run
/// use nrsnn::{PipelineConfig, RobustSnnBuilder, TrainedPipeline};
///
/// # fn main() -> Result<(), nrsnn::NrsnnError> {
/// let pipeline = TrainedPipeline::build(&PipelineConfig::mnist_small())?;
/// let robust = RobustSnnBuilder::new()
///     .burst_duration(5)
///     .expected_deletion(0.5)
///     .time_steps(128)
///     .build(&pipeline)?;
/// let summary = robust.evaluate_under_deletion(&pipeline, 0.5, 64, 0)?;
/// println!("{:.1}%", summary.accuracy_percent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSnnBuilder {
    burst_duration: u32,
    expected_deletion: f64,
    time_steps: u32,
}

impl RobustSnnBuilder {
    /// Creates a builder with the paper's defaults: `t_a = 5`, no expected
    /// deletion, 128 time steps.
    pub fn new() -> Self {
        RobustSnnBuilder {
            burst_duration: 5,
            expected_deletion: 0.0,
            time_steps: 128,
        }
    }

    /// Sets the TTAS burst duration `t_a`.  A degenerate `t_a = 0` is kept
    /// verbatim here and rejected with a typed error by
    /// [`RobustSnnBuilder::build`] (no silent clamping).
    #[must_use]
    pub fn burst_duration(mut self, burst_duration: u32) -> Self {
        self.burst_duration = burst_duration;
        self
    }

    /// Sets the deletion probability the deployment environment is expected
    /// to exhibit; the builder derives the weight-scaling factor
    /// `C = 1/(1−p)` from it.
    #[must_use]
    pub fn expected_deletion(mut self, probability: f64) -> Self {
        self.expected_deletion = probability;
        self
    }

    /// Sets the simulation window length.
    #[must_use]
    pub fn time_steps(mut self, time_steps: u32) -> Self {
        self.time_steps = time_steps.max(1);
        self
    }

    /// Converts the pipeline's trained DNN into the robust SNN.
    ///
    /// # Errors
    /// Returns [`NrsnnError`] if the expected deletion probability is not in
    /// `[0, 1)`, the burst duration is zero, or conversion fails.
    pub fn build(&self, pipeline: &TrainedPipeline) -> Result<RobustSnn> {
        if !(0.0..1.0).contains(&self.expected_deletion) {
            return Err(NrsnnError::InvalidConfig(format!(
                "expected deletion probability must be in [0, 1), got {}",
                self.expected_deletion
            )));
        }
        let coding = TtasCoding::new(self.burst_duration)?;
        let scaling = if self.expected_deletion > 0.0 {
            WeightScaling::for_deletion_probability(self.expected_deletion)?
        } else {
            WeightScaling::none()
        };
        let network = pipeline.to_snn(&scaling)?;
        let config = CodingConfig::new(
            self.time_steps,
            CodingKind::Ttas(self.burst_duration).default_threshold(),
        );
        Ok(RobustSnn {
            network,
            coding,
            config,
            scaling,
        })
    }
}

impl Default for RobustSnnBuilder {
    fn default() -> Self {
        RobustSnnBuilder::new()
    }
}

/// A converted SNN configured with the paper's proposed noise counter-measures.
#[derive(Debug, Clone)]
pub struct RobustSnn {
    /// The converted (and weight-scaled) spiking network.
    pub network: SnnNetwork,
    /// The TTAS coding used for all layers.
    pub coding: TtasCoding,
    /// The shared coding configuration (window length, threshold).
    pub config: CodingConfig,
    /// The weight scaling that was folded into the network.
    pub scaling: WeightScaling,
}

impl RobustSnn {
    /// Classifies a single input vector under an arbitrary noise model.
    ///
    /// # Errors
    /// Propagates simulation errors (e.g. wrong input width).
    pub fn classify(&self, input: &[f32], noise: &dyn SpikeTransform, seed: u64) -> Result<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = self
            .network
            .simulate(input, &self.coding, &self.config, noise, &mut rng)?;
        Ok(outcome.predicted)
    }

    /// Evaluates accuracy over `samples` held-out test samples of the
    /// pipeline under an arbitrary noise model, fanning the samples out over
    /// an auto-sized worker pool ([`ParallelConfig::auto`], honouring
    /// `NRSNN_THREADS`).
    ///
    /// Every sample draws from its own seed-derived RNG stream, so the
    /// result is bit-identical at every thread count.
    ///
    /// # Errors
    /// Propagates simulation errors.
    pub fn evaluate(
        &self,
        pipeline: &TrainedPipeline,
        noise: &dyn SpikeTransform,
        samples: usize,
        seed: u64,
    ) -> Result<EvaluationSummary> {
        self.evaluate_with(pipeline, noise, samples, seed, &ParallelConfig::auto())
    }

    /// [`RobustSnn::evaluate`] with an explicit parallel configuration
    /// (pass [`ParallelConfig::serial`] for the single-threaded reference
    /// path).
    ///
    /// # Errors
    /// Propagates simulation errors.
    pub fn evaluate_with(
        &self,
        pipeline: &TrainedPipeline,
        noise: &dyn SpikeTransform,
        samples: usize,
        seed: u64,
        parallel: &ParallelConfig,
    ) -> Result<EvaluationSummary> {
        let subset = pipeline.test_subset(samples)?;
        crate::exec::evaluate_network(
            &self.network,
            &self.coding,
            &self.config,
            noise,
            &subset,
            seed,
            parallel,
        )
    }

    /// Convenience wrapper: evaluation under pure deletion noise.
    ///
    /// # Errors
    /// Propagates noise-construction and simulation errors.
    pub fn evaluate_under_deletion(
        &self,
        pipeline: &TrainedPipeline,
        probability: f64,
        samples: usize,
        seed: u64,
    ) -> Result<EvaluationSummary> {
        let noise = DeletionNoise::new(probability)?;
        self.evaluate(pipeline, &noise, samples, seed)
    }

    /// Convenience wrapper: evaluation under pure jitter noise.
    ///
    /// # Errors
    /// Propagates noise-construction and simulation errors.
    pub fn evaluate_under_jitter(
        &self,
        pipeline: &TrainedPipeline,
        sigma: f64,
        samples: usize,
        seed: u64,
    ) -> Result<EvaluationSummary> {
        let noise = JitterNoise::new(sigma)?;
        self.evaluate(pipeline, &noise, samples, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, PipelineConfig};
    use nrsnn_data::DatasetSpec;

    fn tiny_pipeline() -> TrainedPipeline {
        let config = PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(80, 40),
            model: ModelKind::Mlp,
            dropout: 0.1,
            epochs: 6,
            batch_size: 16,
            learning_rate: 2e-3,
            percentile: 99.9,
            seed: 21,
        };
        TrainedPipeline::build(&config).unwrap()
    }

    #[test]
    fn builder_validates_deletion_probability() {
        let pipeline = tiny_pipeline();
        assert!(RobustSnnBuilder::new()
            .expected_deletion(1.0)
            .build(&pipeline)
            .is_err());
        assert!(RobustSnnBuilder::new()
            .expected_deletion(-0.5)
            .build(&pipeline)
            .is_err());
    }

    #[test]
    fn builder_derives_weight_scaling_from_expected_deletion() {
        let pipeline = tiny_pipeline();
        let robust = RobustSnnBuilder::new()
            .expected_deletion(0.5)
            .build(&pipeline)
            .unwrap();
        assert!((robust.scaling.factor() - 2.0).abs() < 1e-6);
        let clean = RobustSnnBuilder::new().build(&pipeline).unwrap();
        assert!(clean.scaling.is_identity());
    }

    #[test]
    fn robust_snn_classifies_clean_inputs_correctly() {
        let pipeline = tiny_pipeline();
        let robust = RobustSnnBuilder::new()
            .burst_duration(4)
            .time_steps(96)
            .build(&pipeline)
            .unwrap();
        let summary = robust
            .evaluate(&pipeline, &nrsnn_snn::IdentityTransform, 32, 1)
            .unwrap();
        assert!(
            summary.accuracy >= pipeline.dnn_test_accuracy() - 0.3,
            "robust snn accuracy {} dnn {}",
            summary.accuracy,
            pipeline.dnn_test_accuracy()
        );
    }

    #[test]
    fn evaluate_is_thread_count_invariant() {
        let pipeline = tiny_pipeline();
        let robust = RobustSnnBuilder::new()
            .time_steps(64)
            .build(&pipeline)
            .unwrap();
        let noise = DeletionNoise::new(0.4).unwrap();
        let serial = robust
            .evaluate_with(&pipeline, &noise, 24, 5, &ParallelConfig::serial())
            .unwrap();
        let parallel = robust
            .evaluate_with(&pipeline, &noise, 24, 5, &ParallelConfig::with_threads(4))
            .unwrap();
        assert_eq!(serial, parallel);
        // And the auto-parallel default is the same summary again.
        assert_eq!(serial, robust.evaluate(&pipeline, &noise, 24, 5).unwrap());
    }

    #[test]
    fn classify_returns_a_valid_class() {
        let pipeline = tiny_pipeline();
        let robust = RobustSnnBuilder::new()
            .time_steps(64)
            .build(&pipeline)
            .unwrap();
        let row = pipeline.dataset().test.inputs.row(0).unwrap();
        let class = robust
            .classify(row.as_slice(), &nrsnn_snn::IdentityTransform, 0)
            .unwrap();
        assert!(class < 10);
    }
}
