//! # nrsnn
//!
//! Noise-robust deep spiking neural networks with temporal information — a
//! Rust reproduction of Park, Lee & Yoon (DAC 2021).
//!
//! This crate is the top of the workspace: it wires the substrates
//! (`nrsnn-tensor`, `nrsnn-dnn`, `nrsnn-data`, `nrsnn-snn`, `nrsnn-noise`)
//! into the paper's full pipeline:
//!
//! 1. train a ReLU DNN on a (synthetic) dataset — [`TrainedPipeline::build`];
//! 2. convert it to a deep SNN with data-based threshold balancing —
//!    [`TrainedPipeline::to_snn`];
//! 3. simulate inference under one of five neural codings while injecting
//!    spike deletion / jitter noise — [`TrainedPipeline::evaluate_snn`];
//! 4. apply the paper's counter-measures: weight scaling and TTAS coding —
//!    [`RobustSnnBuilder`];
//! 5. regenerate the paper's figures and tables — [`experiment`] and
//!    [`report`].
//!
//! Sweeps and evaluations fan their `(coding × noise level × sample)` grids
//! out over the work-stealing pool from `nrsnn-runtime`; see *Parallel
//! sweeps* below and `docs/ARCHITECTURE.md` for the execution model.
//!
//! ## Quickstart
//!
//! ```
//! use nrsnn::prelude::*;
//!
//! # fn main() -> Result<(), nrsnn::NrsnnError> {
//! // Train a small DNN on the MNIST-like synthetic dataset and convert it.
//! // (`mnist_small` is the quickstart configuration; the doctest shrinks it
//! // further so `cargo test` stays fast — drop the three overrides for the
//! // real run, as in `examples/quickstart.rs`.)
//! let mut config = PipelineConfig::mnist_small();
//! config.dataset = config.dataset.with_samples(64, 16);
//! config.epochs = 3;
//! let pipeline = TrainedPipeline::build(&config)?;
//!
//! // Evaluate the converted SNN under TTAS coding with 50 % spike deletion
//! // and the matching weight-scaling compensation.
//! let robust = RobustSnnBuilder::new()
//!     .burst_duration(5)
//!     .expected_deletion(0.5)
//!     .build(&pipeline)?;
//! let summary = robust.evaluate_under_deletion(&pipeline, 0.5, 16, 42)?;
//! println!("accuracy under 50% deletion: {:.1}%", summary.accuracy_percent());
//! # assert!(summary.accuracy_percent() >= 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Parallel sweeps
//!
//! The sweep builders distribute their full evaluation grid over a
//! work-stealing thread pool.  Because every sample is simulated with its
//! own seed-derived RNG stream, the parallel result is **bit-identical** to
//! the single-threaded reference — thread count is purely a throughput
//! knob (settable per sweep, or globally via the `NRSNN_THREADS`
//! environment variable):
//!
//! ```
//! use nrsnn::prelude::*;
//!
//! # fn main() -> Result<(), nrsnn::NrsnnError> {
//! # let mut config = PipelineConfig::mnist_small();
//! # config.dataset = config.dataset.with_samples(48, 16);
//! # config.epochs = 2;
//! let pipeline = TrainedPipeline::build(&config)?;
//! let sweep = SweepConfig { time_steps: 32, eval_samples: 8, seed: 7 };
//!
//! let run = |parallel: ParallelConfig| {
//!     DeletionSweep::new(&[CodingKind::Ttfs, CodingKind::Rate], &[0.0, 0.5])
//!         .config(sweep)
//!         .parallel(parallel)
//!         .run(&pipeline)
//! };
//! let serial = run(ParallelConfig::serial())?;
//! let parallel = run(ParallelConfig::with_threads(2))?;
//! assert_eq!(serial, parallel);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod error;
mod exec;
pub mod experiment;
mod model;
mod pipeline;
pub mod report;
mod robust;

pub use error::NrsnnError;
pub use model::{build_model, ModelKind};
pub use nrsnn_runtime::ParallelConfig;
pub use pipeline::{PipelineConfig, TrainedPipeline};
pub use robust::{RobustSnn, RobustSnnBuilder};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NrsnnError>;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::experiment::{
        deletion_sweep, jitter_sweep, DeletionSweep, JitterSweep, SweepConfig, SweepPoint,
    };
    pub use crate::report::{
        format_sweep_table, format_table1, format_table2, Table1Row, Table2Row,
    };
    pub use crate::ParallelConfig;
    pub use crate::{
        build_model, ModelKind, NrsnnError, PipelineConfig, RobustSnn, RobustSnnBuilder,
        TrainedPipeline,
    };
    pub use nrsnn_data::DatasetSpec;
    pub use nrsnn_noise::{
        paper_deletion_probabilities, paper_jitter_intensities, CompositeNoise, DeletionNoise,
        JitterNoise, WeightScaling,
    };
    pub use nrsnn_snn::{
        BatchOutcome, CodingConfig, CodingKind, IdentityTransform, NeuralCoding, SimWorkspace,
        SnnNetwork, SparsityPolicy, SpikeTransform, TtasCoding,
    };
}
