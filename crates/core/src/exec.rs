//! The parallel evaluation engine behind every sweep and robust-SNN
//! evaluation.
//!
//! All accuracy numbers in this crate funnel through two entry points:
//!
//! * [`evaluate_network`] — one (network, coding, noise) point scored over a
//!   set of samples;
//! * [`run_grid`] — a full sweep grid of such points, flattened into one
//!   `(point × sample)` task list so the pool load-balances across the whole
//!   grid instead of synchronising at point boundaries.
//!
//! Determinism contract: sample `s` is always simulated with a fresh RNG
//! seeded `derive_seed(sweep_seed, s)` — a pure function of the sweep seed
//! and the sample index.  Reductions are integer sums (correct counts, spike
//! counts) folded in index order, so the produced [`SweepPoint`]s and
//! [`EvaluationSummary`]s are bit-identical for every thread count and batch
//! size, and a point evaluated alone equals the same point inside a grid.
//!
//! Using the *same* per-sample stream for every grid point is deliberate
//! beyond reproducibility: it applies common random numbers across points,
//! so accuracy differences between codings or noise levels are not inflated
//! by noise-realisation variance.

use nrsnn_data::LabelledSet;
use nrsnn_noise::WeightScaling;
use nrsnn_runtime::{derive_seed, try_parallel_map, ParallelConfig};
use nrsnn_snn::{
    CodingConfig, CodingKind, EvaluationSummary, NeuralCoding, SnnNetwork, SpikeTransform,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiment::SweepPoint;
use crate::{NrsnnError, Result, TrainedPipeline};

/// One point of a sweep grid before it has been measured.
pub(crate) struct GridPointSpec {
    /// Coding simulated at this point.
    pub coding: CodingKind,
    /// Noise level recorded in the resulting [`SweepPoint`].
    pub noise_level: f64,
    /// The sweep-level weight-scaling flag recorded in the result.
    pub weight_scaled: bool,
    /// Weight scaling folded into the converted network.
    pub scaling: WeightScaling,
    /// Noise model injected into every transmitted raster.
    pub noise: Box<dyn SpikeTransform>,
}

/// Scores one converted network under one coding and noise model.
///
/// This is the serial path and the parallel path in one: the per-sample
/// tasks are identical, only the worker count from `parallel` differs.
pub(crate) fn evaluate_network(
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &dyn SpikeTransform,
    subset: &LabelledSet,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<EvaluationSummary> {
    let indices: Vec<usize> = (0..subset.labels.len()).collect();
    let outcomes = try_parallel_map(parallel, &indices, |_, &sample| {
        simulate_sample(network, coding, cfg, noise, subset, sample, seed)
    })?;
    Ok(reduce_summary(&outcomes))
}

/// Runs a full sweep grid: converts each distinct weight scaling once, fans
/// the flattened `(point × sample)` task list over the pool, reduces per
/// point, and returns the points sorted by `(noise level, coding)`.
pub(crate) fn run_grid(
    pipeline: &TrainedPipeline,
    specs: &[GridPointSpec],
    time_steps: u32,
    eval_samples: usize,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<Vec<SweepPoint>> {
    let subset = pipeline.test_subset(eval_samples)?;
    let samples = subset.labels.len();

    // The converted network depends only on the scaling factor, not on the
    // coding or noise model, so convert each distinct scaling exactly once
    // (the old serial path reconverted per point).  Conversion is itself
    // deterministic, hence safe to fan out too.
    let mut scalings: Vec<WeightScaling> = Vec::new();
    let mut network_of_spec: Vec<usize> = Vec::with_capacity(specs.len());
    for spec in specs {
        let slot = scalings
            .iter()
            .position(|&s| s == spec.scaling)
            .unwrap_or_else(|| {
                scalings.push(spec.scaling);
                scalings.len() - 1
            });
        network_of_spec.push(slot);
    }
    let networks = try_parallel_map(parallel, &scalings, |_, scaling| pipeline.to_snn(scaling))?;

    // Codings and their configs are cheap; build them per point up front so
    // the hot tasks only borrow.
    let codings: Vec<Box<dyn NeuralCoding>> = specs.iter().map(|s| s.coding.build()).collect();
    let cfgs: Vec<CodingConfig> = specs
        .iter()
        .map(|s| pipeline.coding_config(s.coding, time_steps))
        .collect();

    // One task per (point, sample) cell of the grid.
    let tasks: Vec<usize> = (0..specs.len() * samples).collect();
    let outcomes = try_parallel_map(parallel, &tasks, |_, &task| {
        let (point, sample) = (task / samples, task % samples);
        simulate_sample(
            &networks[network_of_spec[point]],
            codings[point].as_ref(),
            &cfgs[point],
            specs[point].noise.as_ref(),
            &subset,
            sample,
            seed,
        )
    })?;

    let mut points = Vec::with_capacity(specs.len());
    for (point, spec) in specs.iter().enumerate() {
        let summary = reduce_summary(&outcomes[point * samples..(point + 1) * samples]);
        points.push(SweepPoint {
            coding: spec.coding,
            weight_scaled: spec.weight_scaled,
            noise_level: spec.noise_level,
            accuracy_percent: summary.accuracy_percent(),
            mean_spikes: summary.mean_spikes_per_sample,
        });
    }
    sort_sweep_points(&mut points);
    Ok(points)
}

/// Sorts sweep points by `(noise level, coding, weight scaling)` — the
/// canonical result order, independent of both grid declaration order and
/// task completion order.
pub(crate) fn sort_sweep_points(points: &mut [SweepPoint]) {
    points.sort_by(|a, b| {
        a.noise_level
            .partial_cmp(&b.noise_level)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.coding.order_index().cmp(&b.coding.order_index()))
            .then_with(|| a.weight_scaled.cmp(&b.weight_scaled))
    });
}

/// Outcome of one simulated sample: (classified correctly, spikes emitted).
type SampleOutcome = (bool, usize);

fn simulate_sample(
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &dyn SpikeTransform,
    subset: &LabelledSet,
    sample: usize,
    seed: u64,
) -> Result<SampleOutcome> {
    let row = subset.inputs.row(sample)?;
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, sample as u64));
    let outcome = network.simulate(row.as_slice(), coding, cfg, noise, &mut rng)?;
    Ok((
        outcome.predicted == subset.labels[sample],
        outcome.total_spikes,
    ))
}

fn reduce_summary(outcomes: &[SampleOutcome]) -> EvaluationSummary {
    let correct = outcomes.iter().filter(|(ok, _)| *ok).count();
    let total_spikes: usize = outcomes.iter().map(|(_, spikes)| spikes).sum();
    let samples = outcomes.len().max(1);
    EvaluationSummary {
        accuracy: correct as f32 / samples as f32,
        mean_spikes_per_sample: total_spikes as f32 / samples as f32,
        total_spikes,
        samples: outcomes.len(),
    }
}

// Compile-time guarantees that the types crossing the pool boundary may do
// so; a regression here (e.g. an Rc sneaking into a noise model) fails the
// build instead of the build of a downstream user.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn SpikeTransform>();
    assert_send_sync::<dyn NeuralCoding>();
    assert_send_sync::<SnnNetwork>();
    assert_send_sync::<NrsnnError>();
};
