//! The parallel evaluation engine behind every sweep and robust-SNN
//! evaluation.
//!
//! All accuracy numbers in this crate funnel through two entry points:
//!
//! * [`evaluate_network`] — one (network, coding, noise) point scored over a
//!   set of samples;
//! * [`run_grid`] — a full sweep grid of such points, flattened into one
//!   chunked `(point × sample-range)` task list so the pool load-balances
//!   across the whole grid instead of synchronising at point boundaries.
//!
//! ## Execution model
//!
//! Tasks are *chunks* of consecutive samples of one grid point.  Every
//! worker thread owns a single reusable [`SimWorkspace`] (created once per
//! worker via [`try_parallel_map_init`]) and simulates its chunks through
//! the batched [`SnnNetwork::simulate_batch`] API, so the steady-state hot
//! loop allocates nothing per sample.  The engine underneath is
//! sparsity-aware: each layer decodes only its active spike trains and
//! auto-selects sparse kernels by measured density
//! (`nrsnn_snn::SparsityPolicy`), so sweep cells under few-spike codings
//! (TTFS, TTAS) at high deletion levels run proportionally faster — with
//! results still bit-identical, because the sparse kernels only skip exact
//! `w · 0.0` terms.  A chunk reduces to the pair `(correct, spikes)` of
//! integer counts; per-point sums over chunks in index order equal the old
//! per-sample sums exactly.
//!
//! Determinism contract: sample `s` is always simulated with a fresh RNG
//! seeded `derive_seed(sweep_seed, s)` — a pure function of the sweep seed
//! and the sample index, independent of chunking and of which worker (and
//! therefore which workspace) runs the chunk.  Reductions are integer sums
//! folded in index order, so the produced [`SweepPoint`]s and
//! [`EvaluationSummary`]s are bit-identical for every thread count, batch
//! size and workspace reuse pattern, and a point evaluated alone equals the
//! same point inside a grid.  The `workspace_bit_identity` integration
//! tests additionally pin this engine byte-for-byte against a per-sample
//! loop over the allocating reference simulator.
//!
//! Using the *same* per-sample stream for every grid point is deliberate
//! beyond reproducibility: it applies common random numbers across points,
//! so accuracy differences between codings or noise levels are not inflated
//! by noise-realisation variance.

use std::ops::Range;

use nrsnn_data::LabelledSet;
use nrsnn_noise::WeightScaling;
use nrsnn_runtime::{derive_seed, try_parallel_map, try_parallel_map_init, ParallelConfig};
use nrsnn_snn::{
    BatchOutcome, CodingConfig, CodingKind, EvaluationSummary, NeuralCoding, SimWorkspace,
    SnnNetwork, SpikeTransform,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiment::SweepPoint;
use crate::{NrsnnError, Result, TrainedPipeline};

/// One point of a sweep grid before it has been measured.
pub(crate) struct GridPointSpec {
    /// Coding simulated at this point.
    pub coding: CodingKind,
    /// Noise level recorded in the resulting [`SweepPoint`].
    pub noise_level: f64,
    /// The sweep-level weight-scaling flag recorded in the result.
    pub weight_scaled: bool,
    /// Weight scaling folded into the converted network.
    pub scaling: WeightScaling,
    /// Noise model injected into every transmitted raster.
    pub noise: Box<dyn SpikeTransform>,
}

/// Per-worker scratch: one simulation workspace plus the outcome buffer the
/// batched API refills per chunk.  Carries no values that influence results.
#[derive(Default)]
struct WorkerScratch {
    ws: SimWorkspace,
    outcomes: Vec<BatchOutcome>,
}

/// A chunk of consecutive samples of one grid point.
#[derive(Debug, Clone)]
struct ChunkSpec {
    point: usize,
    samples: Range<usize>,
}

/// Splits `points × samples` into per-point chunks of at most
/// `parallel.batch_size` samples.  Each chunk is one unit of work for the
/// pool (see [`chunk_schedule`]), so the worker count and steal granularity
/// match the old engine, where the pool grouped individual samples into
/// `batch_size`-sized batches itself.
fn chunk_grid(points: usize, samples: usize, parallel: &ParallelConfig) -> Vec<ChunkSpec> {
    let chunk = parallel.batch_size.max(1);
    let mut chunks = Vec::with_capacity(points * samples.div_ceil(chunk.max(1)).max(1));
    for point in 0..points {
        let mut start = 0;
        while start < samples {
            let end = (start + chunk).min(samples);
            chunks.push(ChunkSpec {
                point,
                samples: start..end,
            });
            start = end;
        }
    }
    chunks
}

/// Pool configuration for mapping over [`ChunkSpec`]s: the chunks already
/// carry `batch_size` samples each, so the pool must schedule them one at a
/// time — re-batching chunks by `batch_size` would square the scheduling
/// granularity and clamp the worker count to `ceil(chunks / batch_size)`,
/// serialising small grids that the per-sample engine ran in parallel.
fn chunk_schedule(parallel: &ParallelConfig) -> ParallelConfig {
    parallel.with_batch_size(1)
}

/// Integer reduction of one chunk: (correctly classified, spikes emitted).
type ChunkCounts = (usize, usize);

/// Simulates one chunk through the worker's workspace and reduces it to
/// integer counts.  Deterministic given the chunk: every sample derives its
/// own RNG from `seed`, and the workspace never carries state into results.
#[allow(clippy::too_many_arguments)]
fn simulate_chunk(
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &dyn SpikeTransform,
    subset: &LabelledSet,
    samples: Range<usize>,
    seed: u64,
    scratch: &mut WorkerScratch,
) -> Result<ChunkCounts> {
    let start = samples.start;
    network.simulate_batch(
        &subset.inputs,
        samples,
        coding,
        cfg,
        noise,
        |sample| StdRng::seed_from_u64(derive_seed(seed, sample as u64)),
        &mut scratch.ws,
        &mut scratch.outcomes,
    )?;
    let mut correct = 0usize;
    let mut spikes = 0usize;
    for (offset, outcome) in scratch.outcomes.iter().enumerate() {
        if outcome.predicted == subset.labels[start + offset] {
            correct += 1;
        }
        spikes += outcome.total_spikes;
    }
    Ok((correct, spikes))
}

/// Scores one converted network under one coding and noise model.
///
/// This is the serial path and the parallel path in one: the per-chunk
/// tasks are identical, only the worker count from `parallel` differs.
pub(crate) fn evaluate_network(
    network: &SnnNetwork,
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    noise: &dyn SpikeTransform,
    subset: &LabelledSet,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<EvaluationSummary> {
    // Validate once per evaluation instead of once per sample.
    cfg.validate()?;
    let samples = subset.labels.len();
    let chunks = chunk_grid(1, samples, parallel);
    let counts = try_parallel_map_init(
        &chunk_schedule(parallel),
        &chunks,
        WorkerScratch::default,
        |scratch, _, chunk| {
            simulate_chunk(
                network,
                coding,
                cfg,
                noise,
                subset,
                chunk.samples.clone(),
                seed,
                scratch,
            )
        },
    )?;
    let (correct, spikes) = counts
        .iter()
        .fold((0, 0), |(c, s), &(cc, cs)| (c + cc, s + cs));
    Ok(summary_from_counts(correct, spikes, samples))
}

/// Runs a full sweep grid: converts each distinct weight scaling once, fans
/// the chunked `(point × sample-range)` task list over the pool, reduces per
/// point, and returns the points sorted by `(noise level, coding)`.
pub(crate) fn run_grid(
    pipeline: &TrainedPipeline,
    specs: &[GridPointSpec],
    time_steps: u32,
    eval_samples: usize,
    seed: u64,
    parallel: &ParallelConfig,
) -> Result<Vec<SweepPoint>> {
    let subset = pipeline.test_subset(eval_samples)?;
    let samples = subset.labels.len();

    // The converted network depends only on the scaling factor, not on the
    // coding or noise model, so convert each distinct scaling exactly once
    // (the old serial path reconverted per point).  Conversion is itself
    // deterministic, hence safe to fan out too.
    let mut scalings: Vec<WeightScaling> = Vec::new();
    let mut network_of_spec: Vec<usize> = Vec::with_capacity(specs.len());
    for spec in specs {
        let slot = scalings
            .iter()
            .position(|&s| s == spec.scaling)
            .unwrap_or_else(|| {
                scalings.push(spec.scaling);
                scalings.len() - 1
            });
        network_of_spec.push(slot);
    }
    // One conversion per task (batch size 1): with the handful of distinct
    // scalings a sweep produces, the default batch size would fold them all
    // into one pool batch and convert serially.
    let networks = try_parallel_map(&chunk_schedule(parallel), &scalings, |_, scaling| {
        pipeline.to_snn(scaling)
    })?;

    // Codings and their configs are cheap; build them per point up front so
    // the hot tasks only borrow.  Validating every coding kind and config
    // here (once per grid cell, hoisted out of the per-sample loop)
    // surfaces errors — including degenerate kinds like `Ttas(0)`, which
    // `build` would otherwise clamp — before any simulation work is
    // scheduled.
    for spec in specs {
        spec.coding.validate()?;
    }
    let codings: Vec<Box<dyn NeuralCoding>> = specs.iter().map(|s| s.coding.build()).collect();
    let cfgs: Vec<CodingConfig> = specs
        .iter()
        .map(|s| pipeline.coding_config(s.coding, time_steps))
        .collect();
    for cfg in &cfgs {
        cfg.validate()?;
    }

    // One task per (point, sample-range) chunk; every worker reuses one
    // workspace across all the chunks it runs.
    let chunks = chunk_grid(specs.len(), samples, parallel);
    let counts = try_parallel_map_init(
        &chunk_schedule(parallel),
        &chunks,
        WorkerScratch::default,
        |scratch, _, chunk| {
            simulate_chunk(
                &networks[network_of_spec[chunk.point]],
                codings[chunk.point].as_ref(),
                &cfgs[chunk.point],
                specs[chunk.point].noise.as_ref(),
                &subset,
                chunk.samples.clone(),
                seed,
                scratch,
            )
        },
    )?;

    // Reduce chunk counts per point in chunk-index order (integer sums, so
    // identical to the old per-sample reduction).
    let mut correct_per_point = vec![0usize; specs.len()];
    let mut spikes_per_point = vec![0usize; specs.len()];
    for (chunk, &(correct, spikes)) in chunks.iter().zip(&counts) {
        correct_per_point[chunk.point] += correct;
        spikes_per_point[chunk.point] += spikes;
    }

    let mut points = Vec::with_capacity(specs.len());
    for (point, spec) in specs.iter().enumerate() {
        let summary =
            summary_from_counts(correct_per_point[point], spikes_per_point[point], samples);
        points.push(SweepPoint {
            coding: spec.coding,
            weight_scaled: spec.weight_scaled,
            noise_level: spec.noise_level,
            accuracy_percent: summary.accuracy_percent(),
            mean_spikes: summary.mean_spikes_per_sample,
        });
    }
    sort_sweep_points(&mut points);
    Ok(points)
}

/// Sorts sweep points by `(noise level, coding, weight scaling)` — the
/// canonical result order, independent of both grid declaration order and
/// task completion order.
pub(crate) fn sort_sweep_points(points: &mut [SweepPoint]) {
    points.sort_by(|a, b| {
        a.noise_level
            .partial_cmp(&b.noise_level)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.coding.order_index().cmp(&b.coding.order_index()))
            .then_with(|| a.weight_scaled.cmp(&b.weight_scaled))
    });
}

fn summary_from_counts(correct: usize, total_spikes: usize, samples: usize) -> EvaluationSummary {
    let denom = samples.max(1);
    EvaluationSummary {
        accuracy: correct as f32 / denom as f32,
        mean_spikes_per_sample: total_spikes as f32 / denom as f32,
        total_spikes,
        samples,
    }
}

// Compile-time guarantees that the types crossing the pool boundary may do
// so; a regression here (e.g. an Rc sneaking into a noise model) fails the
// build instead of the build of a downstream user.
const _: () = {
    const fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn SpikeTransform>();
    assert_send_sync::<dyn NeuralCoding>();
    assert_send_sync::<SnnNetwork>();
    assert_send_sync::<NrsnnError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_every_cell_exactly_once() {
        for (points, samples, batch) in [(3, 10, 4), (1, 1, 8), (2, 7, 7), (4, 5, 100)] {
            let parallel = ParallelConfig::serial().with_batch_size(batch);
            let chunks = chunk_grid(points, samples, &parallel);
            let mut seen = vec![0usize; points * samples];
            for chunk in &chunks {
                assert!(chunk.samples.len() <= batch);
                for s in chunk.samples.clone() {
                    seen[chunk.point * samples + s] += 1;
                }
            }
            assert!(
                seen.iter().all(|&n| n == 1),
                "points={points} samples={samples} batch={batch}"
            );
        }
    }

    #[test]
    fn chunk_schedule_feeds_the_pool_one_chunk_at_a_time() {
        // A chunk already holds `batch_size` samples; if the pool re-batched
        // chunks by `batch_size`, a 24-sample evaluation at batch 8 would
        // collapse to ceil(3/8) = 1 schedulable batch and run serial.
        let parallel = ParallelConfig::with_threads(4).with_batch_size(8);
        assert_eq!(chunk_schedule(&parallel).batch_size, 1);
        assert_eq!(chunk_schedule(&parallel).threads, parallel.threads);
        // 24 samples -> 3 chunks -> 3 schedulable units, as the per-sample
        // engine had (24 samples -> 3 pool batches).
        assert_eq!(chunk_grid(1, 24, &parallel).len(), 3);
    }

    #[test]
    fn summary_from_counts_matches_old_reduction() {
        let summary = summary_from_counts(3, 120, 4);
        assert_eq!(summary.accuracy, 3.0 / 4.0);
        assert_eq!(summary.mean_spikes_per_sample, 30.0);
        assert_eq!(summary.total_spikes, 120);
        assert_eq!(summary.samples, 4);
        // Empty evaluations keep the old `max(1)` denominator convention.
        let empty = summary_from_counts(0, 0, 0);
        assert_eq!(empty.accuracy, 0.0);
        assert_eq!(empty.samples, 0);
    }
}
