//! The end-to-end train → convert → simulate pipeline.

use nrsnn_data::{DatasetSpec, LabelledSet, SyntheticDataset};
use nrsnn_dnn::{Adam, LayerDescriptor, Sequential, SoftmaxCrossEntropy, TrainConfig};
use nrsnn_noise::WeightScaling;
use nrsnn_runtime::ParallelConfig;
use nrsnn_snn::{
    convert, CodingConfig, CodingKind, ConversionConfig, SnnNetwork, SpikeTransform,
    ThresholdBalancer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{build_model, ModelKind, NrsnnError, Result};

/// Configuration of a full pipeline run (dataset, architecture, training and
/// conversion hyper-parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Dataset to generate.
    pub dataset: DatasetSpec,
    /// Architecture family.
    pub model: ModelKind,
    /// Dropout probability used while training the source DNN.
    pub dropout: f32,
    /// Number of training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Activation percentile for threshold balancing.
    pub percentile: f32,
    /// Master seed controlling data generation, initialisation and training.
    pub seed: u64,
}

impl PipelineConfig {
    /// A quick MNIST-like configuration suitable for tests and the
    /// quickstart example (small sample count, few epochs).
    pub fn mnist_small() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(256, 64),
            model: ModelKind::Auto,
            dropout: 0.2,
            epochs: 12,
            batch_size: 32,
            learning_rate: 1e-3,
            percentile: 99.9,
            seed: 42,
        }
    }

    /// The MNIST-like configuration used by the experiment harness.
    pub fn mnist_full() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(768, 192),
            epochs: 20,
            ..PipelineConfig::mnist_small()
        }
    }

    /// The CIFAR-10-like configuration used by the experiment harness
    /// (convolutional model).
    pub fn cifar10_full() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::cifar10_like().with_samples(640, 160),
            model: ModelKind::Auto,
            dropout: 0.2,
            epochs: 18,
            batch_size: 32,
            learning_rate: 1e-3,
            percentile: 99.9,
            seed: 7,
        }
    }

    /// The CIFAR-100-like configuration used by the experiment harness.
    pub fn cifar100_full() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::cifar100_like().with_samples(1_600, 400),
            model: ModelKind::Auto,
            dropout: 0.2,
            epochs: 18,
            batch_size: 32,
            learning_rate: 1e-3,
            percentile: 99.9,
            seed: 11,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`NrsnnError::InvalidConfig`] for zero epochs/batch size or an
    /// out-of-range percentile.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(NrsnnError::InvalidConfig(
                "epochs and batch_size must be non-zero".to_string(),
            ));
        }
        if !(self.percentile > 0.0 && self.percentile <= 100.0) {
            return Err(NrsnnError::InvalidConfig(format!(
                "percentile must be in (0, 100], got {}",
                self.percentile
            )));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(NrsnnError::InvalidConfig(format!(
                "dropout must be in [0, 1), got {}",
                self.dropout
            )));
        }
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::mnist_small()
    }
}

/// A trained DNN together with everything needed to convert and evaluate it
/// as a spiking network.
pub struct TrainedPipeline {
    config: PipelineConfig,
    dataset: SyntheticDataset,
    dnn: Sequential,
    descriptors: Vec<LayerDescriptor>,
    activation_scales: Vec<f32>,
    dnn_train_accuracy: f32,
    dnn_test_accuracy: f32,
}

impl std::fmt::Debug for TrainedPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedPipeline")
            .field("dataset", &self.dataset.spec.name)
            .field("layers", &self.descriptors.len())
            .field("dnn_test_accuracy", &self.dnn_test_accuracy)
            .finish()
    }
}

impl TrainedPipeline {
    /// Generates the dataset, trains the source DNN and computes the
    /// activation scales for conversion.
    ///
    /// # Errors
    /// Propagates dataset-generation, training and statistics errors.
    pub fn build(config: &PipelineConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dataset = SyntheticDataset::generate(&config.dataset, &mut rng)?;

        let mut dnn = build_model(config.model, &config.dataset, config.dropout, &mut rng)?;
        let train_cfg = TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            lr_decay: 0.97,
            shuffle: true,
        };
        let mut optimizer = Adam::new(config.learning_rate);
        let report = dnn.fit(
            &dataset.train.inputs,
            &dataset.train.labels,
            &mut optimizer,
            &SoftmaxCrossEntropy::new(),
            &train_cfg,
            &mut rng,
        )?;
        let test_eval = dnn.evaluate(&dataset.test.inputs, &dataset.test.labels)?;

        // Threshold balancing statistics over (a subset of) the training set.
        let probe = dataset.train.take(dataset.train.len().min(256))?;
        let balancer = ThresholdBalancer::new(config.percentile)?;
        let activation_scales = balancer.scales(&mut dnn, &probe.inputs)?;
        let descriptors = dnn.descriptors();

        Ok(TrainedPipeline {
            config: config.clone(),
            dataset,
            dnn,
            descriptors,
            activation_scales,
            dnn_train_accuracy: report.final_train_accuracy,
            dnn_test_accuracy: test_eval.accuracy,
        })
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &SyntheticDataset {
        &self.dataset
    }

    /// The trained source DNN.
    pub fn dnn(&self) -> &Sequential {
        &self.dnn
    }

    /// Conversion descriptors of the trained DNN.
    pub fn descriptors(&self) -> &[LayerDescriptor] {
        &self.descriptors
    }

    /// Per-layer activation scales from threshold balancing.
    pub fn activation_scales(&self) -> &[f32] {
        &self.activation_scales
    }

    /// Training-set accuracy of the source DNN.
    pub fn dnn_train_accuracy(&self) -> f32 {
        self.dnn_train_accuracy
    }

    /// Test-set accuracy of the source DNN (the ceiling for SNN accuracy).
    pub fn dnn_test_accuracy(&self) -> f32 {
        self.dnn_test_accuracy
    }

    /// Converts the trained DNN into a spiking network, applying the given
    /// weight-scaling compensation.
    ///
    /// # Errors
    /// Propagates conversion errors.
    pub fn to_snn(&self, scaling: &WeightScaling) -> Result<SnnNetwork> {
        let snn = convert(
            &self.descriptors,
            &self.activation_scales,
            &ConversionConfig {
                weight_scale: scaling.factor(),
            },
        )?;
        Ok(snn)
    }

    /// The coding configuration (time window and empirical threshold) for a
    /// coding kind, following the paper's §V settings scaled to this
    /// reproduction.
    pub fn coding_config(&self, kind: CodingKind, time_steps: u32) -> CodingConfig {
        CodingConfig::new(time_steps, kind.default_threshold())
    }

    /// Converts, simulates and scores the SNN under the given coding, noise
    /// model and weight scaling over `samples` held-out test samples.
    ///
    /// Each sample is simulated with its own RNG stream derived from `seed`
    /// and the sample index (see `nrsnn-runtime`), so the result is
    /// identical to [`TrainedPipeline::evaluate_snn_parallel`] at any
    /// thread count.
    ///
    /// # Errors
    /// Propagates conversion and simulation errors.
    pub fn evaluate_snn(
        &self,
        kind: CodingKind,
        time_steps: u32,
        noise: &dyn SpikeTransform,
        scaling: &WeightScaling,
        samples: usize,
        seed: u64,
    ) -> Result<nrsnn_snn::EvaluationSummary> {
        self.evaluate_snn_parallel(
            kind,
            time_steps,
            noise,
            scaling,
            samples,
            seed,
            &ParallelConfig::serial(),
        )
    }

    /// [`TrainedPipeline::evaluate_snn`] with the samples fanned out over a
    /// worker pool.  Bit-identical to the serial path for every `parallel`
    /// configuration.
    ///
    /// # Errors
    /// Propagates conversion and simulation errors.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_snn_parallel(
        &self,
        kind: CodingKind,
        time_steps: u32,
        noise: &dyn SpikeTransform,
        scaling: &WeightScaling,
        samples: usize,
        seed: u64,
        parallel: &ParallelConfig,
    ) -> Result<nrsnn_snn::EvaluationSummary> {
        let snn = self.to_snn(scaling)?;
        let coding = kind.build();
        let cfg = self.coding_config(kind, time_steps);
        let subset = self.dataset.test.take(samples)?;
        crate::exec::evaluate_network(&snn, coding.as_ref(), &cfg, noise, &subset, seed, parallel)
    }

    /// Held-out test subset helper (used by the experiment harness).
    ///
    /// # Errors
    /// Propagates tensor errors.
    pub fn test_subset(&self, samples: usize) -> Result<LabelledSet> {
        Ok(self.dataset.test.take(samples)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrsnn_snn::IdentityTransform;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            dataset: DatasetSpec::mnist_like().with_samples(80, 40),
            model: ModelKind::Mlp,
            dropout: 0.1,
            epochs: 6,
            batch_size: 16,
            learning_rate: 2e-3,
            percentile: 99.9,
            seed: 3,
        }
    }

    #[test]
    fn config_validation() {
        let mut c = tiny_config();
        assert!(c.validate().is_ok());
        c.epochs = 0;
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.percentile = 0.0;
        assert!(c.validate().is_err());
        let mut c = tiny_config();
        c.dropout = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn build_trains_a_usable_dnn_and_converts_it() {
        let pipeline = TrainedPipeline::build(&tiny_config()).unwrap();
        // The synthetic task is easy: the DNN must beat chance by a wide
        // margin even with this tiny budget.
        assert!(
            pipeline.dnn_test_accuracy() > 0.5,
            "dnn test accuracy {}",
            pipeline.dnn_test_accuracy()
        );
        assert_eq!(pipeline.descriptors().len(), 3);
        assert_eq!(pipeline.activation_scales().len(), 3);

        let snn = pipeline.to_snn(&WeightScaling::none()).unwrap();
        assert_eq!(snn.input_width(), 784);
        assert_eq!(snn.output_width(), 10);
    }

    #[test]
    fn clean_snn_accuracy_tracks_dnn_accuracy() {
        let pipeline = TrainedPipeline::build(&tiny_config()).unwrap();
        let summary = pipeline
            .evaluate_snn(
                CodingKind::Rate,
                128,
                &IdentityTransform,
                &WeightScaling::none(),
                32,
                0,
            )
            .unwrap();
        assert!(
            summary.accuracy >= pipeline.dnn_test_accuracy() - 0.25,
            "snn {} vs dnn {}",
            summary.accuracy,
            pipeline.dnn_test_accuracy()
        );
        assert!(summary.mean_spikes_per_sample > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TrainedPipeline::build(&tiny_config()).unwrap();
        let b = TrainedPipeline::build(&tiny_config()).unwrap();
        assert_eq!(a.dnn_test_accuracy(), b.dnn_test_accuracy());
        assert_eq!(a.activation_scales(), b.activation_scales());
    }
}
