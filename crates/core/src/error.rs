use std::error::Error;
use std::fmt;

use nrsnn_data::DataError;
use nrsnn_dnn::DnnError;
use nrsnn_noise::NoiseError;
use nrsnn_snn::SnnError;
use nrsnn_tensor::TensorError;

/// Top-level error type of the `nrsnn` pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum NrsnnError {
    /// Tensor-level failure.
    Tensor(TensorError),
    /// DNN training/inference failure.
    Dnn(DnnError),
    /// Dataset generation failure.
    Data(DataError),
    /// SNN conversion/simulation failure.
    Snn(SnnError),
    /// Noise-model configuration failure.
    Noise(NoiseError),
    /// Invalid experiment configuration.
    InvalidConfig(String),
}

impl fmt::Display for NrsnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NrsnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NrsnnError::Dnn(e) => write!(f, "dnn error: {e}"),
            NrsnnError::Data(e) => write!(f, "data error: {e}"),
            NrsnnError::Snn(e) => write!(f, "snn error: {e}"),
            NrsnnError::Noise(e) => write!(f, "noise error: {e}"),
            NrsnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NrsnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NrsnnError::Tensor(e) => Some(e),
            NrsnnError::Dnn(e) => Some(e),
            NrsnnError::Data(e) => Some(e),
            NrsnnError::Snn(e) => Some(e),
            NrsnnError::Noise(e) => Some(e),
            NrsnnError::InvalidConfig(_) => None,
        }
    }
}

impl From<TensorError> for NrsnnError {
    fn from(e: TensorError) -> Self {
        NrsnnError::Tensor(e)
    }
}

impl From<DnnError> for NrsnnError {
    fn from(e: DnnError) -> Self {
        NrsnnError::Dnn(e)
    }
}

impl From<DataError> for NrsnnError {
    fn from(e: DataError) -> Self {
        NrsnnError::Data(e)
    }
}

impl From<SnnError> for NrsnnError {
    fn from(e: SnnError) -> Self {
        NrsnnError::Snn(e)
    }
}

impl From<NoiseError> for NrsnnError {
    fn from(e: NoiseError) -> Self {
        NrsnnError::Noise(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_wrap_sub_errors() {
        let e: NrsnnError = TensorError::ShapeDataMismatch {
            elements: 1,
            expected: 2,
        }
        .into();
        assert!(matches!(e, NrsnnError::Tensor(_)));
        assert!(e.source().is_some());

        let e: NrsnnError = NoiseError::InvalidParameter("x".to_string()).into();
        assert!(matches!(e, NrsnnError::Noise(_)));
    }

    #[test]
    fn display_is_informative() {
        let e = NrsnnError::InvalidConfig("no codings selected".to_string());
        assert!(e.to_string().contains("no codings selected"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NrsnnError>();
    }
}
