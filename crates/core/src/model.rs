//! Model-architecture presets for the reproduction.
//!
//! The paper evaluates VGG16; this reproduction trains laptop-scale networks
//! of the same *kind* (convolution + average pooling + fully connected with
//! ReLU and dropout) on the synthetic datasets.  Architectures are chosen by
//! dataset shape: an MLP for the single-channel MNIST-like task and a small
//! CNN for the three-channel CIFAR-like tasks.  See `DESIGN.md` §2 for why
//! this substitution preserves the noise phenomena under study.

use nrsnn_data::DatasetSpec;
use nrsnn_dnn::{AvgPool2d, Conv2d, Dense, Dropout, Flatten, Relu, Sequential};
use nrsnn_tensor::{Conv2dGeometry, Pool2dGeometry};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{NrsnnError, Result};

/// The architecture family to instantiate for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multi-layer perceptron (input → 256 → 128 → classes).
    Mlp,
    /// Small convolutional network
    /// (conv-avgpool-conv-avgpool-dense-dense, VGG-style blocks).
    Cnn,
    /// Pick [`ModelKind::Mlp`] for single-channel inputs and
    /// [`ModelKind::Cnn`] for multi-channel inputs.
    Auto,
}

impl ModelKind {
    /// Resolves [`ModelKind::Auto`] against a dataset specification.
    pub fn resolve(&self, spec: &DatasetSpec) -> ModelKind {
        match self {
            ModelKind::Auto => {
                if spec.channels == 1 {
                    ModelKind::Mlp
                } else {
                    ModelKind::Cnn
                }
            }
            other => *other,
        }
    }
}

/// Builds a trainable DNN for the given dataset specification.
///
/// Dropout (probability `dropout`) is inserted before each dense layer; the
/// paper points out that dropout-trained source DNNs are what gives TTFS its
/// all-or-none deletion robustness after conversion, so it is on by default.
///
/// # Errors
/// Returns [`NrsnnError::InvalidConfig`] if the dataset shape is unusable
/// (e.g. images too small for the convolutional stack).
pub fn build_model<R: Rng>(
    kind: ModelKind,
    spec: &DatasetSpec,
    dropout: f32,
    rng: &mut R,
) -> Result<Sequential> {
    match kind.resolve(spec) {
        ModelKind::Mlp => build_mlp(spec, dropout, rng),
        ModelKind::Cnn => build_cnn(spec, dropout, rng),
        ModelKind::Auto => unreachable!("resolve never returns Auto"),
    }
}

fn build_mlp<R: Rng>(spec: &DatasetSpec, dropout: f32, rng: &mut R) -> Result<Sequential> {
    let input = spec.feature_len();
    let mut net = Sequential::new();
    net.push(Dense::new(rng, input, 256)?);
    net.push(Relu::new());
    net.push(Dropout::new(dropout, 11)?);
    net.push(Dense::new(rng, 256, 128)?);
    net.push(Relu::new());
    net.push(Dropout::new(dropout, 13)?);
    net.push(Dense::new(rng, 128, spec.classes)?);
    Ok(net)
}

fn build_cnn<R: Rng>(spec: &DatasetSpec, dropout: f32, rng: &mut R) -> Result<Sequential> {
    if spec.height < 8 || spec.width < 8 {
        return Err(NrsnnError::InvalidConfig(format!(
            "CNN preset needs at least 8x8 inputs, got {}x{}",
            spec.height, spec.width
        )));
    }
    if spec.height % 4 != 0 || spec.width % 4 != 0 {
        return Err(NrsnnError::InvalidConfig(format!(
            "CNN preset needs dimensions divisible by 4, got {}x{}",
            spec.height, spec.width
        )));
    }
    let mut net = Sequential::new();

    // Block 1: conv 3x3 (same padding) -> ReLU -> avgpool 2x2.
    let conv1 = Conv2dGeometry::new(spec.channels, spec.height, spec.width, 3, 1, 1)
        .map_err(NrsnnError::Tensor)?;
    let c1_out = 12usize;
    net.push(Conv2d::new(rng, conv1, c1_out)?);
    net.push(Relu::new());
    let pool1 =
        Pool2dGeometry::new(c1_out, spec.height, spec.width, 2, 2).map_err(NrsnnError::Tensor)?;
    net.push(AvgPool2d::new(pool1));

    // Block 2: conv 3x3 -> ReLU -> avgpool 2x2.
    let (h2, w2) = (spec.height / 2, spec.width / 2);
    let conv2 = Conv2dGeometry::new(c1_out, h2, w2, 3, 1, 1).map_err(NrsnnError::Tensor)?;
    let c2_out = 24usize;
    net.push(Conv2d::new(rng, conv2, c2_out)?);
    net.push(Relu::new());
    let pool2 = Pool2dGeometry::new(c2_out, h2, w2, 2, 2).map_err(NrsnnError::Tensor)?;
    net.push(AvgPool2d::new(pool2));

    // Classifier head.
    let (h4, w4) = (spec.height / 4, spec.width / 4);
    let flat = c2_out * h4 * w4;
    net.push(Flatten::new());
    net.push(Dropout::new(dropout, 17)?);
    net.push(Dense::new(rng, flat, 96)?);
    net.push(Relu::new());
    net.push(Dropout::new(dropout, 19)?);
    net.push(Dense::new(rng, 96, spec.classes)?);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrsnn_dnn::Mode;
    use nrsnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_resolves_by_channels() {
        assert_eq!(
            ModelKind::Auto.resolve(&DatasetSpec::mnist_like()),
            ModelKind::Mlp
        );
        assert_eq!(
            ModelKind::Auto.resolve(&DatasetSpec::cifar10_like()),
            ModelKind::Cnn
        );
        assert_eq!(
            ModelKind::Mlp.resolve(&DatasetSpec::cifar10_like()),
            ModelKind::Mlp
        );
    }

    #[test]
    fn mlp_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let spec = DatasetSpec::mnist_like();
        let mut net = build_model(ModelKind::Auto, &spec, 0.2, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, spec.feature_len()]);
        let y = net.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        // Three weighted layers in the descriptor chain.
        assert_eq!(net.descriptors().len(), 3);
    }

    #[test]
    fn cnn_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = DatasetSpec::cifar10_like();
        let mut net = build_model(ModelKind::Auto, &spec, 0.2, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, spec.feature_len()]);
        let y = net.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.dims(), &[1, 10]);
        // conv, pool, conv, pool, dense, dense -> 6 descriptors.
        assert_eq!(net.descriptors().len(), 6);
    }

    #[test]
    fn cnn_supports_100_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = DatasetSpec::cifar100_like();
        let mut net = build_model(ModelKind::Cnn, &spec, 0.2, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, spec.feature_len()]);
        let y = net.forward(&x, Mode::Infer).unwrap();
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn cnn_rejects_tiny_images() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spec = DatasetSpec::cifar10_like();
        spec.height = 4;
        spec.width = 4;
        assert!(build_model(ModelKind::Cnn, &spec, 0.2, &mut rng).is_err());
        spec.height = 18;
        spec.width = 18;
        assert!(build_model(ModelKind::Cnn, &spec, 0.2, &mut rng).is_err());
    }
}
