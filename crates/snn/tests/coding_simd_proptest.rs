//! Property tests proving the lane-blocked coding paths bit-identical to the
//! per-value scalar reference, on every SIMD backend the host supports.
//!
//! The block encoders ([`NeuralCoding::encode_raster_into`]) compute spike
//! counts, phase bit patterns and first-spike ratios 8 neurons at a time;
//! these tests pin them train-for-train against the per-value
//! `encode_into` path over adversarial widths (0, 1, lane−1, lane, lane+1,
//! non-multiples of 8) and adversarial activations (signed zeros,
//! subnormals, NaN, infinities, exact `0.0`/`1.0`, values a few ULP around
//! the clipping threshold).  The decode half pins `decode_into` /
//! `decode_active_into` against per-train `decode`, including the
//! empty-train `+0.0` contract, per coding and per ISA.  This file is the
//! coding-layer sibling of `crates/tensor/tests/simd_kernel_proptest.rs`
//! (kernel level) and `tests/workspace_bit_identity.rs` (whole pipelines).

use std::sync::Mutex;

use nrsnn_snn::{
    BurstCoding, CodingConfig, CodingScratch, NeuralCoding, PhaseCoding, RateCoding, SpikeRaster,
    TtasCoding, TtfsCoding,
};
use nrsnn_tensor::simd::{available_backends, set_backend, SimdBackend};
use proptest::{rng_for, TestRng, CASES};
use rand::Rng;

/// The active SIMD backend is process-global; tests that switch it hold
/// this lock so a failure in one test is attributable to the backend that
/// test selected (passing runs are unaffected either way — all backends
/// are bit-identical by contract).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn backend_guard() -> std::sync::MutexGuard<'static, ()> {
    BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Width pool straddling the 8-lane block width.
const WIDTHS: &[usize] = &[0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33];

/// Window pool: tiny windows (spikes clipped away), the canonical phase
/// period and neighbours, and windows with a partial trailing period.
const TIME_STEPS: &[u32] = &[1, 3, 7, 8, 9, 16, 30, 48, 64, 100, 128];

/// Clipping thresholds, including a sub-unit and an above-unit one.
const THRESHOLDS: &[f32] = &[1.0, 0.4, 1.2];

/// Every coding under test, including structural-parameter variants (the
/// phase period changes the bit-pattern width, the burst cap changes the
/// count quantisation, TTAS(1) degenerates to TTFS).
fn codings() -> Vec<Box<dyn NeuralCoding>> {
    vec![
        Box::new(RateCoding::new()),
        Box::new(PhaseCoding::new()),
        Box::new(PhaseCoding::with_period(4).unwrap()),
        Box::new(BurstCoding::new()),
        Box::new(BurstCoding::with_max_spikes(4).unwrap()),
        Box::new(TtfsCoding::new()),
        Box::new(TtasCoding::new(1).unwrap()),
        Box::new(TtasCoding::new(5).unwrap()),
    ]
}

/// Draws an adversarial activation: IEEE corner cases, values a few ULP
/// around the clipping threshold (where the quantisers round), exact
/// `0.0`/`1.0`, and ordinary magnitudes spanning the clamp range.
fn draw_activation(rng: &mut TestRng, threshold: f32) -> f32 {
    const SPECIAL: &[f32] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.5,
        -2.5,
        f32::MIN_POSITIVE, // smallest normal
        1.0e-41,           // subnormal
        -1.0e-41,          // negative subnormal
        1.0e-20,
        1.0e-6,
        2.5,
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
    ];
    match rng.gen_range(0u32..4) {
        0 => SPECIAL[rng.gen_range(0..SPECIAL.len())],
        // A few ULP either side of the threshold: exercises the clamp and
        // every rounding boundary of the count quantisers.
        1 => {
            let steps = rng.gen_range(-3i32..=3);
            let mut v = threshold;
            for _ in 0..steps.abs() {
                v = if steps > 0 {
                    f32::from_bits(v.to_bits() + 1)
                } else {
                    f32::from_bits(v.to_bits() - 1)
                };
            }
            v
        }
        _ => rng.gen_range(-0.5f32..1.5) * threshold,
    }
}

fn draw_values(rng: &mut TestRng, len: usize, threshold: f32) -> Vec<f32> {
    (0..len).map(|_| draw_activation(rng, threshold)).collect()
}

fn draw_cfg(rng: &mut TestRng) -> CodingConfig {
    CodingConfig::new(
        TIME_STEPS[rng.gen_range(0..TIME_STEPS.len())],
        THRESHOLDS[rng.gen_range(0..THRESHOLDS.len())],
    )
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Per-value reference raster: the `encode_into` path, which goes through
/// the same scalar helpers on every backend (it never dispatches).
fn reference_raster(coding: &dyn NeuralCoding, values: &[f32], cfg: &CodingConfig) -> SpikeRaster {
    let mut raster = SpikeRaster::new(values.len(), cfg.time_steps);
    let mut train = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        coding.encode_into(v, cfg, &mut train);
        raster.set_train(i, train.clone());
    }
    raster
}

/// Block encode on every ISA must reproduce the per-value path train for
/// train, over adversarial widths and activations, with the raster and
/// scratch buffers deliberately reused dirty across cases.
#[test]
fn block_encode_every_isa_matches_per_value_path() {
    let _guard = backend_guard();
    let mut rng = rng_for("block_encode_every_isa_matches_per_value_path");
    let previous = set_backend(SimdBackend::Scalar);
    let all = codings();
    let isas = available_backends();
    // One dirty raster/scratch pair reused across every case and backend:
    // the block path must fully overwrite stale trains and lane buffers.
    let mut raster = SpikeRaster::new(0, 1);
    let mut scratch = CodingScratch::new();
    for _ in 0..CASES {
        let cfg = draw_cfg(&mut rng);
        let width = WIDTHS[rng.gen_range(0..WIDTHS.len())];
        let values = draw_values(&mut rng, width, cfg.threshold);
        for coding in &all {
            let reference = reference_raster(coding.as_ref(), &values, &cfg);
            for &isa in &isas {
                set_backend(isa);
                coding.encode_raster_into(&values, &cfg, &mut raster, &mut scratch);
                assert_eq!(raster.num_neurons(), width);
                for (n, value) in values.iter().enumerate() {
                    assert_eq!(
                        raster.train(n),
                        reference.train(n),
                        "{isa:?} {} T={} θ={} neuron {n} value {value:?}",
                        coding.name(),
                        cfg.time_steps,
                        cfg.threshold,
                    );
                }
            }
        }
    }
    set_backend(previous);
}

/// Mutilates an encoded raster the way the noise transforms would: random
/// spike deletions and ±1 jitter, renormalised through `set_train` — so the
/// decoders see trains that no encoder produces.
fn perturb(raster: &SpikeRaster, rng: &mut TestRng) -> SpikeRaster {
    let num_steps = raster.num_steps();
    let mut out = SpikeRaster::new(raster.num_neurons(), num_steps);
    for (n, train) in raster.iter() {
        let mut noisy = Vec::with_capacity(train.len());
        for &t in train {
            if rng.gen_range(0.0f32..1.0) <= 0.25 {
                continue;
            }
            let jittered = t as i64 + rng.gen_range(-1i64..=1);
            noisy.push(jittered.clamp(0, num_steps as i64 - 1) as u32);
        }
        out.set_train(n, noisy);
    }
    out
}

/// Block decode (`decode_into` and `decode_active_into`) on every ISA must
/// equal the per-train `decode` bit for bit — including on noise-perturbed
/// trains — and `active` must list exactly the nonzero decoded indices.
#[test]
fn block_decode_every_isa_matches_per_train_decode() {
    let _guard = backend_guard();
    let mut rng = rng_for("block_decode_every_isa_matches_per_train_decode");
    let previous = set_backend(SimdBackend::Scalar);
    let all = codings();
    let isas = available_backends();
    let mut decoded = Vec::new();
    let mut active = Vec::new();
    let mut scratch = Vec::new();
    let mut encode_scratch = CodingScratch::new();
    for case in 0..CASES {
        let cfg = draw_cfg(&mut rng);
        let width = WIDTHS[rng.gen_range(0..WIDTHS.len())];
        let values = draw_values(&mut rng, width, cfg.threshold);
        for coding in &all {
            let mut raster = SpikeRaster::new(0, 1);
            coding.encode_raster_into(&values, &cfg, &mut raster, &mut encode_scratch);
            let raster = if case % 2 == 0 {
                perturb(&raster, &mut rng)
            } else {
                raster
            };
            let reference: Vec<f32> = (0..width)
                .map(|n| coding.decode(raster.train(n), &cfg))
                .collect();
            let expected_active: Vec<u32> = reference
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(n, _)| n as u32)
                .collect();
            for &isa in &isas {
                set_backend(isa);
                let context = format!("{isa:?} {} T={}", coding.name(), cfg.time_steps);
                coding.decode_into(&raster, &cfg, &mut decoded);
                assert_eq!(bits(&decoded), bits(&reference), "{context}: decode_into");
                coding.decode_active_into(&raster, &cfg, &mut decoded, &mut active, &mut scratch);
                assert_eq!(
                    bits(&decoded),
                    bits(&reference),
                    "{context}: decode_active_into"
                );
                assert_eq!(active, expected_active, "{context}: active set");
            }
        }
    }
    set_backend(previous);
}

/// The empty-train `+0.0` contract per coding, per ISA: a silent neuron
/// decodes to bit pattern `0x0000_0000` through every decode entry point,
/// and never lands in the active set.
#[test]
fn empty_trains_decode_to_positive_zero_on_every_isa() {
    let _guard = backend_guard();
    let previous = set_backend(SimdBackend::Scalar);
    let mut decoded = Vec::new();
    let mut active = Vec::new();
    let mut scratch = Vec::new();
    for coding in &codings() {
        for &t in TIME_STEPS {
            let cfg = CodingConfig::new(t, 1.0);
            // Nine silent neurons: one full block plus a scalar-tail lane.
            let raster = SpikeRaster::new(9, t);
            for isa in available_backends() {
                set_backend(isa);
                let context = format!("{isa:?} {} T={t}", coding.name());
                assert_eq!(
                    coding.decode(&[], &cfg).to_bits(),
                    0,
                    "{context}: decode(&[])"
                );
                coding.decode_into(&raster, &cfg, &mut decoded);
                assert!(
                    decoded.iter().all(|v| v.to_bits() == 0),
                    "{context}: decode_into"
                );
                coding.decode_active_into(&raster, &cfg, &mut decoded, &mut active, &mut scratch);
                assert!(
                    decoded.iter().all(|v| v.to_bits() == 0),
                    "{context}: decode_active_into"
                );
                assert!(active.is_empty(), "{context}: active set");
            }
        }
    }
    set_backend(previous);
}

/// A fixed adversarial activation sweep — every special value through every
/// coding at every width 0..=17, on every ISA, against the per-value path.
/// Deterministic companion to the sampled property above: a regression here
/// names the exact value that diverged.
#[test]
fn adversarial_activation_sweep_is_isa_invariant() {
    let _guard = backend_guard();
    let previous = set_backend(SimdBackend::Scalar);
    let theta = 1.0f32;
    let pool: Vec<f32> = vec![
        0.0,
        -0.0,
        1.0e-41,
        -1.0e-41,
        f32::MIN_POSITIVE,
        1.0e-6,
        0.5,
        f32::from_bits(theta.to_bits() - 1),
        theta,
        f32::from_bits(theta.to_bits() + 1),
        1.0,
        2.5,
        -1.0,
        f32::NAN,
        f32::INFINITY,
    ];
    let cfg = CodingConfig::new(64, theta);
    let mut raster = SpikeRaster::new(0, 1);
    let mut scratch = CodingScratch::new();
    for coding in &codings() {
        for width in 0..=17usize {
            // Rotate the pool so every value visits every lane position.
            let values: Vec<f32> = (0..width).map(|i| pool[(i + width) % pool.len()]).collect();
            let reference = reference_raster(coding.as_ref(), &values, &cfg);
            for isa in available_backends() {
                set_backend(isa);
                coding.encode_raster_into(&values, &cfg, &mut raster, &mut scratch);
                for (n, value) in values.iter().enumerate() {
                    assert_eq!(
                        raster.train(n),
                        reference.train(n),
                        "{isa:?} {} width {width} neuron {n} value {value:?}",
                        coding.name(),
                    );
                }
            }
        }
    }
    set_backend(previous);
}
