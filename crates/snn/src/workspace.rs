//! Reusable simulation scratch: the [`SimWorkspace`] threaded through the
//! batched inference engine.
//!
//! One clock-driven SNN inference needs, per layer, a spike raster, a noisy
//! copy of it, a decoded activation vector, a dense output vector and — for
//! convolution layers — an `im2col` patch matrix, a transposed kernel bank
//! and their product.  The original `SnnNetwork::simulate` allocated all of
//! these afresh on every call, which dominated the cost of the paper's
//! `(coding × noise level × sample)` sweep grids.  A `SimWorkspace` owns all
//! of those buffers once; the batched entry points
//! ([`crate::SnnNetwork::simulate_batch`] and friends) clear-and-refill them
//! per sample, so after the first (warm-up) sample the steady-state
//! allocation count per simulated sample is **zero** — verified by the
//! `alloc_regression` integration test.
//!
//! The workspace stores no results that influence later samples: every
//! buffer is fully overwritten before it is read, which is why a workspace
//! can be reused freely across samples, codings, noise models and even
//! differently-scaled networks without affecting the (bit-exact) results.
//!
//! ```
//! use nrsnn_snn::{CodingConfig, RateCoding, SimWorkspace, SnnLayer, SnnNetwork};
//! use nrsnn_snn::IdentityTransform;
//! use nrsnn_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), nrsnn_snn::SnnError> {
//! let net = SnnNetwork::new(vec![SnnLayer::Linear {
//!     weights: Tensor::eye(2),
//!     bias: Tensor::zeros(&[2]),
//! }])?;
//! let cfg = CodingConfig::new(64, 1.0);
//! let mut ws = SimWorkspace::new();
//! let mut rng = StdRng::seed_from_u64(0);
//! let outcome = net.simulate_with(
//!     &[0.9, 0.1],
//!     &RateCoding::new(),
//!     &cfg,
//!     &IdentityTransform,
//!     &mut rng,
//!     &mut ws,
//! )?;
//! assert_eq!(outcome.predicted, 0);
//! assert_eq!(ws.logits().len(), 2);
//! # Ok(())
//! # }
//! ```

// nrsnn-lint: allow(forbidden-api) -- stage tracing needs a raw monotonic
// stamp and snn must stay obs-free (layering); serve converts these spans
// onto the obs epoch at ingest.
use std::time::Instant;

use crate::{CodingConfig, CodingScratch, SnnLayer, SnnNetwork, SpikeRaster};

/// The simulation phase a [`StageEvent`] attributes time to. This is the
/// engine's own vocabulary — deliberately independent of any observability
/// crate, so `nrsnn-snn` stays free of serving-layer dependencies; the
/// serving layer maps these onto its span taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStage {
    /// Analog-to-spike conversion of a layer's input vector.
    Encode,
    /// Synaptic-noise corruption of a transmitted raster.
    Noise,
    /// Spike-to-analog PSC decode of a received raster.
    Decode,
    /// A layer's forward pass (dense or sparse kernel).
    Forward,
}

/// One timed phase of the most recent simulation, produced when stage
/// tracing is enabled via [`SimWorkspace::set_stage_tracing`].
///
/// Consecutive events tile the simulation: each event's `start` is the
/// previous event's `end`, so summing durations reconstructs the full
/// simulate time with no gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageEvent {
    /// Which phase the time was spent in.
    pub stage: SimStage,
    /// Layer index the phase belongs to (the initial input encode is
    /// layer 0).
    pub layer: u32,
    /// Phase start.
    pub start: Instant,
    /// Phase end.
    pub end: Instant,
    /// For [`SimStage::Forward`]: whether the sparse gather kernel was
    /// taken; `false` otherwise.
    pub sparse: bool,
    /// For [`SimStage::Forward`]: the measured raster density the kernel
    /// decision saw; `0.0` otherwise.
    pub density: f32,
}

/// Scratch buffers for the convolution forward pass (`im2col` patch matrix,
/// transposed kernel bank, their product).
#[derive(Debug, Clone, Default)]
pub(crate) struct ConvScratch {
    /// Unrolled input patches, `(out_positions x patch_len)` row-major.
    pub(crate) cols: Vec<f32>,
    /// Transposed kernel bank, `(patch_len x out_channels)` row-major.
    pub(crate) weights_t: Vec<f32>,
    /// `cols · weights_t`, `(out_positions x out_channels)` row-major.
    pub(crate) prod: Vec<f32>,
}

/// Reusable per-inference scratch buffers for the batched simulation engine.
///
/// Create one per worker thread (or one per serial loop), then hand it to
/// [`SnnNetwork::simulate_with`] or [`SnnNetwork::simulate_batch`]; the
/// workspace grows to the largest network/window it has seen and never
/// shrinks, so steady-state simulation performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct SimWorkspace {
    /// One raster per layer: `rasters[i]` is the (clean) raster entering
    /// layer `i`.  Keeping them per layer — instead of ping-ponging one
    /// buffer through widths that alternate every layer — is what lets the
    /// per-neuron spike buffers reach a fixed point after warm-up: a
    /// `Vec<Vec<u32>>` that shrank would drop its tail buffers and have to
    /// reallocate them on the next sample.
    pub(crate) rasters: Vec<SpikeRaster>,
    /// Per-layer noise-corrupted rasters actually received by each layer;
    /// unused (and untouched) when the transform reports itself as the
    /// identity.
    pub(crate) received: Vec<SpikeRaster>,
    /// PSC-decoded activations entering the current layer.
    pub(crate) decoded: Vec<f32>,
    /// Per-layer active-index scratch: `active[i]` holds the ascending
    /// indices of the nonzero entries of layer `i`'s decoded input — the
    /// column set the sparse kernels restrict themselves to.  Per layer
    /// (like the rasters) so every buffer reaches a fixed capacity after
    /// warm-up.
    pub(crate) active: Vec<Vec<u32>>,
    /// Reusable decode scratch handed to
    /// [`crate::NeuralCoding::decode_active_into`] (e.g. TTAS tabulates its
    /// PSC kernel in here once per raster instead of exp-ing per spike).
    pub(crate) decode_scratch: Vec<f32>,
    /// Reusable SoA scratch handed to
    /// [`crate::NeuralCoding::encode_raster_into`]: the lane-blocked
    /// encoders compute per-neuron counts/ratios/bit patterns in here 8
    /// lanes at a time before materialising the spike trains.
    pub(crate) encode_scratch: CodingScratch,
    /// Measured input density (`active.len() / input_width`) of each layer
    /// in the most recent simulation — what the auto kernel selection
    /// compared against its threshold.
    pub(crate) density_per_layer: Vec<f32>,
    /// Dense output of the current layer; after a simulation this holds the
    /// logits of the output layer.
    pub(crate) activation: Vec<f32>,
    /// Convolution scratch (empty for pure-MLP networks).
    pub(crate) conv: ConvScratch,
    /// Transmitted spike count per raster, input raster first.
    pub(crate) spikes_per_layer: Vec<usize>,
    /// Per-phase timing of the most recent simulation; only filled when
    /// `trace_enabled` is set, cleared at the start of every sample.
    pub(crate) stage_events: Vec<StageEvent>,
    /// Whether `simulate_core` should timestamp its phases. Off by
    /// default: the simulation sweep paths pay zero instrumentation cost.
    pub(crate) trace_enabled: bool,
}

impl SimWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Creates a workspace with capacity pre-reserved for simulating
    /// `network` under `cfg`, so even the first sample allocates (almost)
    /// nothing.
    pub fn for_network(network: &SnnNetwork, cfg: &CodingConfig) -> Self {
        let mut ws = SimWorkspace::new();
        let mut max_width = network.input_width();
        for layer in network.layers() {
            max_width = max_width.max(layer.output_width());
            if let SnnLayer::Conv {
                weights, geometry, ..
            } = layer
            {
                let patch = geometry.patch_len();
                let positions = geometry.out_positions();
                let out_ch = weights.dims()[0];
                ws.conv.cols.reserve(positions * patch);
                ws.conv.weights_t.reserve(patch * out_ch);
                ws.conv.prod.reserve(positions * out_ch);
            }
        }
        ws.decoded.reserve(max_width);
        ws.activation.reserve(max_width);
        ws.decode_scratch.reserve(cfg.time_steps as usize);
        ws.encode_scratch.lanes.reserve(max_width);
        ws.encode_scratch.bits.reserve(max_width);
        ws.spikes_per_layer.reserve(network.num_layers());
        ws.density_per_layer.reserve(network.num_layers());
        // One raster pair and one active-index buffer per layer, each sized
        // for that layer's input width; the per-train spike buffers still
        // grow lazily on the first sample.
        for layer in network.layers() {
            ws.rasters
                .push(SpikeRaster::new(layer.input_width(), cfg.time_steps));
            ws.received
                .push(SpikeRaster::new(layer.input_width(), cfg.time_steps));
            ws.active.push(Vec::with_capacity(layer.input_width()));
        }
        ws
    }

    /// Output-layer activations of the most recent simulation (the logits a
    /// [`crate::SimulationOutcome`] would carry).
    pub fn logits(&self) -> &[f32] {
        &self.activation
    }

    /// Transmitted spikes per raster (input raster first) of the most recent
    /// simulation.
    pub fn spikes_per_layer(&self) -> &[usize] {
        &self.spikes_per_layer
    }

    /// Measured decoded-input density per layer (input layer first) of the
    /// most recent simulation — the activity fractions the engine's
    /// [`crate::SparsityPolicy`] compared against its threshold.
    pub fn density_per_layer(&self) -> &[f32] {
        &self.density_per_layer
    }

    /// Enables or disables per-phase stage timing. When enabled, every
    /// simulation fills [`SimWorkspace::stage_events`] with one
    /// [`StageEvent`] per encode/noise/decode/forward phase. Tracing never
    /// touches the RNG stream, so results are bit-identical either way.
    pub fn set_stage_tracing(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
        if enabled && self.stage_events.capacity() == 0 {
            // Enough for a deep network without a warm-up allocation:
            // at most 4 phases per layer.
            self.stage_events.reserve(64);
        }
    }

    /// Whether per-phase stage timing is enabled.
    pub fn stage_tracing(&self) -> bool {
        self.trace_enabled
    }

    /// Per-phase timing of the most recent simulation (empty unless
    /// tracing is enabled via [`SimWorkspace::set_stage_tracing`]).
    pub fn stage_events(&self) -> &[StageEvent] {
        &self.stage_events
    }
}

/// Compact per-sample result of the batched simulation path.
///
/// Unlike [`crate::SimulationOutcome`] this is `Copy` and carries no owned
/// buffers — the logits and per-layer spike counts of the *last* simulated
/// sample remain readable from the workspace via [`SimWorkspace::logits`]
/// and [`SimWorkspace::spikes_per_layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Index of the winning output neuron.
    pub predicted: usize,
    /// Total number of transmitted spikes across all rasters (after noise).
    pub total_spikes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdentityTransform, RateCoding};
    use nrsnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_network() -> SnnNetwork {
        SnnNetwork::new(vec![SnnLayer::Linear {
            weights: Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2]).unwrap(),
            bias: Tensor::zeros(&[2]),
        }])
        .unwrap()
    }

    #[test]
    fn for_network_presizes_and_simulates() {
        let net = toy_network();
        let cfg = CodingConfig::new(32, 1.0);
        let mut ws = SimWorkspace::for_network(&net, &cfg);
        assert_eq!(ws.rasters.len(), 1);
        assert_eq!(ws.rasters[0].num_neurons(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = net
            .simulate_with(
                &[0.2, 0.9],
                &RateCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng,
                &mut ws,
            )
            .unwrap();
        assert_eq!(outcome.predicted, 1);
        assert_eq!(ws.spikes_per_layer().len(), 1);
        assert_eq!(ws.logits().len(), 2);
    }

    #[test]
    fn workspace_results_do_not_depend_on_prior_contents() {
        let net = toy_network();
        let cfg = CodingConfig::new(48, 1.0);
        let coding = RateCoding::new();
        let mut fresh = SimWorkspace::new();
        let mut reused = SimWorkspace::new();
        // Dirty the reused workspace with a different input first.
        let mut rng = StdRng::seed_from_u64(7);
        net.simulate_with(
            &[0.7, 0.7],
            &coding,
            &cfg,
            &IdentityTransform,
            &mut rng,
            &mut reused,
        )
        .unwrap();
        for input in [[0.9f32, 0.1], [0.3, 0.4]] {
            let mut rng_a = StdRng::seed_from_u64(3);
            let mut rng_b = StdRng::seed_from_u64(3);
            let a = net
                .simulate_with(
                    &input,
                    &coding,
                    &cfg,
                    &IdentityTransform,
                    &mut rng_a,
                    &mut fresh,
                )
                .unwrap();
            let b = net
                .simulate_with(
                    &input,
                    &coding,
                    &cfg,
                    &IdentityTransform,
                    &mut rng_b,
                    &mut reused,
                )
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(fresh.logits(), reused.logits());
            assert_eq!(fresh.spikes_per_layer(), reused.spikes_per_layer());
        }
    }
}
