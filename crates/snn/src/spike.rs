//! Spike-train storage.

use serde::{Deserialize, Serialize};

/// Spike trains of one layer over a fixed time window.
///
/// Spikes are binary events; a train is the sorted list of time steps at
/// which the neuron fired.  All value information is carried by *when* the
/// spikes occur (and how many there are), which is what makes the different
/// neural codings differ in their robustness to spike deletion and jitter.
///
/// ```
/// use nrsnn_snn::SpikeRaster;
///
/// let mut raster = SpikeRaster::new(3, 16);
/// raster.set_train(0, vec![1, 5, 9]);
/// raster.set_train(2, vec![0]);
/// assert_eq!(raster.total_spikes(), 4);
/// assert_eq!(raster.train(1), &[] as &[u32]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeRaster {
    num_steps: u32,
    trains: Vec<Vec<u32>>,
}

impl SpikeRaster {
    /// Creates an empty raster for `num_neurons` neurons over `num_steps`
    /// time steps.
    pub fn new(num_neurons: usize, num_steps: u32) -> Self {
        SpikeRaster {
            num_steps,
            trains: vec![Vec::new(); num_neurons],
        }
    }

    /// Number of neurons in the raster.
    pub fn num_neurons(&self) -> usize {
        self.trains.len()
    }

    /// Length of the time window in steps.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// The spike train (sorted time steps) of neuron `neuron`.
    ///
    /// # Panics
    /// Panics if `neuron` is out of range.
    pub fn train(&self, neuron: usize) -> &[u32] {
        &self.trains[neuron]
    }

    /// Replaces the spike train of neuron `neuron`.  Times are clamped to
    /// the window and sorted.
    ///
    /// # Panics
    /// Panics if `neuron` is out of range.
    pub fn set_train(&mut self, neuron: usize, mut times: Vec<u32>) {
        let max = self.num_steps.saturating_sub(1);
        for t in &mut times {
            if *t > max {
                *t = max;
            }
        }
        times.sort_unstable();
        self.trains[neuron] = times;
    }

    /// Iterates over `(neuron_index, spike_train)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.trains
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.as_slice()))
    }

    /// Total number of spikes across all neurons.
    pub fn total_spikes(&self) -> usize {
        self.trains.iter().map(|t| t.len()).sum()
    }

    /// Mean firing rate (spikes per neuron per time step).
    pub fn mean_rate(&self) -> f32 {
        if self.trains.is_empty() || self.num_steps == 0 {
            return 0.0;
        }
        self.total_spikes() as f32 / (self.trains.len() as f32 * self.num_steps as f32)
    }

    /// Builds a raster from per-neuron trains, clamping and sorting each.
    pub fn from_trains(trains: Vec<Vec<u32>>, num_steps: u32) -> Self {
        let mut raster = SpikeRaster::new(trains.len(), num_steps);
        for (i, t) in trains.into_iter().enumerate() {
            raster.set_train(i, t);
        }
        raster
    }

    /// Maps every spike train through `f`, producing a new raster over the
    /// same window (used by noise models).
    pub fn map_trains<F>(&self, mut f: F) -> SpikeRaster
    where
        F: FnMut(usize, &[u32]) -> Vec<u32>,
    {
        let trains = self
            .trains
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        SpikeRaster::from_trains(trains, self.num_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_raster_is_empty() {
        let r = SpikeRaster::new(5, 10);
        assert_eq!(r.num_neurons(), 5);
        assert_eq!(r.num_steps(), 10);
        assert_eq!(r.total_spikes(), 0);
        assert_eq!(r.mean_rate(), 0.0);
    }

    #[test]
    fn set_train_sorts_and_clamps() {
        let mut r = SpikeRaster::new(1, 8);
        r.set_train(0, vec![9, 3, 20, 1]);
        assert_eq!(r.train(0), &[1, 3, 7, 7]);
    }

    #[test]
    fn total_and_rate() {
        let mut r = SpikeRaster::new(2, 10);
        r.set_train(0, vec![0, 1, 2]);
        r.set_train(1, vec![5]);
        assert_eq!(r.total_spikes(), 4);
        assert!((r.mean_rate() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn from_trains_round_trips() {
        let r = SpikeRaster::from_trains(vec![vec![1, 2], vec![], vec![3]], 5);
        assert_eq!(r.num_neurons(), 3);
        assert_eq!(r.train(2), &[3]);
    }

    #[test]
    fn map_trains_applies_per_neuron() {
        let r = SpikeRaster::from_trains(vec![vec![1, 2, 3], vec![4]], 10);
        let doubled = r.map_trains(|_, t| t.iter().map(|&x| x * 2).collect());
        assert_eq!(doubled.train(0), &[2, 4, 6]);
        assert_eq!(doubled.train(1), &[8]);
    }

    #[test]
    fn iter_yields_all_neurons() {
        let r = SpikeRaster::from_trains(vec![vec![1], vec![2], vec![]], 4);
        assert_eq!(r.iter().count(), 3);
        let counts: Vec<usize> = r.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(counts, vec![1, 1, 0]);
    }
}
