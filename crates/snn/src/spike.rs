//! Spike-train storage.

use serde::{Deserialize, Serialize};

/// Spike trains of one layer over a fixed time window.
///
/// Spikes are **binary** events: a neuron either fires at a time step or it
/// does not, so a train is the sorted list of *distinct* time steps at which
/// the neuron fired.  Every mutation path normalises its trains (clamp to
/// the window, sort, merge duplicates), which keeps train-based spike
/// counts, decoded values and any dense 0/1 view of the raster consistent —
/// e.g. two jittered spikes that collide on one step after clamping merge
/// into a single spike instead of double-counting.  All value information is
/// carried by *when* the spikes occur (and how many there are), which is
/// what makes the different neural codings differ in their robustness to
/// spike deletion and jitter.
///
/// A neuron with a non-empty train is *active*; the sparsity-aware
/// simulation engine uses the active set (see
/// [`SpikeRaster::num_active_trains`] / [`SpikeRaster::density`]) to skip
/// work that empty trains cannot contribute.
///
/// ```
/// use nrsnn_snn::SpikeRaster;
///
/// let mut raster = SpikeRaster::new(3, 16);
/// raster.set_train(0, vec![1, 5, 9]);
/// raster.set_train(2, vec![0]);
/// assert_eq!(raster.total_spikes(), 4);
/// assert_eq!(raster.train(1), &[] as &[u32]);
/// assert_eq!(raster.num_active_trains(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeRaster {
    num_steps: u32,
    trains: Vec<Vec<u32>>,
}

impl SpikeRaster {
    /// Creates an empty raster for `num_neurons` neurons over `num_steps`
    /// time steps.
    pub fn new(num_neurons: usize, num_steps: u32) -> Self {
        SpikeRaster {
            num_steps,
            trains: vec![Vec::new(); num_neurons],
        }
    }

    /// Number of neurons in the raster.
    pub fn num_neurons(&self) -> usize {
        self.trains.len()
    }

    /// Length of the time window in steps.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// The spike train (sorted time steps) of neuron `neuron`.
    ///
    /// # Panics
    /// Panics if `neuron` is out of range.
    pub fn train(&self, neuron: usize) -> &[u32] {
        &self.trains[neuron]
    }

    /// Replaces the spike train of neuron `neuron`.  Times are clamped to
    /// the window, sorted, and duplicates merged (spikes are binary events:
    /// firing "twice" at one step is one spike).
    ///
    /// # Panics
    /// Panics if `neuron` is out of range.
    pub fn set_train(&mut self, neuron: usize, mut times: Vec<u32>) {
        normalize_train(&mut times, self.num_steps);
        self.trains[neuron] = times;
    }

    /// Returns `true` if neuron `neuron` fires at least once (its train is
    /// non-empty).
    ///
    /// # Panics
    /// Panics if `neuron` is out of range.
    pub fn is_active(&self, neuron: usize) -> bool {
        !self.trains[neuron].is_empty()
    }

    /// Number of active (non-empty-train) neurons.
    pub fn num_active_trains(&self) -> usize {
        self.trains.iter().filter(|t| !t.is_empty()).count()
    }

    /// Fraction of neurons that fire at least once — the activity measure
    /// the sparsity-aware simulation engine selects its kernels by.  An
    /// empty raster reports a density of `1.0` (nothing can be skipped).
    pub fn density(&self) -> f32 {
        if self.trains.is_empty() {
            return 1.0;
        }
        self.num_active_trains() as f32 / self.trains.len() as f32
    }

    /// Iterates over `(neuron_index, spike_train)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> {
        self.trains
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.as_slice()))
    }

    /// Total number of spikes across all neurons.
    pub fn total_spikes(&self) -> usize {
        self.trains.iter().map(|t| t.len()).sum()
    }

    /// Mean firing rate (spikes per neuron per time step).
    pub fn mean_rate(&self) -> f32 {
        if self.trains.is_empty() || self.num_steps == 0 {
            return 0.0;
        }
        self.total_spikes() as f32 / (self.trains.len() as f32 * self.num_steps as f32)
    }

    /// Builds a raster from per-neuron trains, clamping and sorting each.
    pub fn from_trains(trains: Vec<Vec<u32>>, num_steps: u32) -> Self {
        let mut raster = SpikeRaster::new(trains.len(), num_steps);
        for (i, t) in trains.into_iter().enumerate() {
            raster.set_train(i, t);
        }
        raster
    }

    /// Maps every spike train through `f`, producing a new raster over the
    /// same window (used by noise models).
    pub fn map_trains<F>(&self, mut f: F) -> SpikeRaster
    where
        F: FnMut(usize, &[u32]) -> Vec<u32>,
    {
        let trains = self
            .trains
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        SpikeRaster::from_trains(trains, self.num_steps)
    }

    /// Allocation-free sibling of [`SpikeRaster::map_trains`]: maps every
    /// train of `self` into the corresponding (cleared) train buffer of
    /// `dst`, reusing `dst`'s allocations.
    ///
    /// `f` receives `(neuron, source_train, destination_buffer)` in neuron
    /// order — noise models that draw randomness per spike therefore consume
    /// their RNG in exactly the same order as the allocating path.  The
    /// produced trains are clamped and sorted like [`SpikeRaster::set_train`]
    /// does, so the result is identical to `self.map_trains(f)`.
    pub fn map_trains_into<F>(&self, dst: &mut SpikeRaster, mut f: F)
    where
        F: FnMut(usize, &[u32], &mut Vec<u32>),
    {
        dst.num_steps = self.num_steps;
        dst.trains.resize_with(self.trains.len(), Vec::new);
        for (i, src) in self.trains.iter().enumerate() {
            let out = &mut dst.trains[i];
            out.clear();
            f(i, src, out);
            normalize_train(out, self.num_steps);
        }
    }

    /// Rebuilds the raster in place for `num_neurons` neurons over
    /// `num_steps` steps, filling every train through `f` while reusing the
    /// existing per-train buffers.
    ///
    /// `f` receives `(neuron, train_buffer)` with the buffer already
    /// cleared; after `f` returns the train is clamped and sorted exactly
    /// like [`SpikeRaster::set_train`], so the result is identical to
    /// [`SpikeRaster::from_trains`] over the same trains.
    pub fn fill_trains<F>(&mut self, num_neurons: usize, num_steps: u32, mut f: F)
    where
        F: FnMut(usize, &mut Vec<u32>),
    {
        self.num_steps = num_steps;
        self.trains.resize_with(num_neurons, Vec::new);
        for (i, train) in self.trains.iter_mut().enumerate() {
            train.clear();
            f(i, train);
            normalize_train(train, num_steps);
        }
    }

    /// [`SpikeRaster::fill_trains`] minus the per-train normalisation scan:
    /// `f` **must** emit strictly increasing times below `num_steps`
    /// (debug-asserted), which every lane-blocked encoder guarantees by
    /// construction.  Skipping the scan matters because the encode tail is
    /// pure train materialisation — re-validating what was just emitted in
    /// order would cost a second pass over every spike.
    pub(crate) fn fill_trains_trusted<F>(&mut self, num_neurons: usize, num_steps: u32, mut f: F)
    where
        F: FnMut(usize, &mut Vec<u32>),
    {
        self.num_steps = num_steps;
        self.trains.resize_with(num_neurons, Vec::new);
        for (i, train) in self.trains.iter_mut().enumerate() {
            train.clear();
            f(i, train);
            debug_assert!(
                !train.last().is_some_and(|&last| last >= num_steps)
                    && train.windows(2).all(|w| w[0] < w[1]),
                "fill_trains_trusted: neuron {i} emitted a non-canonical train"
            );
        }
    }

    /// Mutates every train in place through `f` (in neuron order), then
    /// re-normalises each like [`SpikeRaster::set_train`] (clamp to the
    /// window, sort).  The allocation-free primitive behind in-place noise
    /// transforms such as spike deletion (`Vec::retain`) and jitter.
    pub fn update_trains<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, &mut Vec<u32>),
    {
        for (i, train) in self.trains.iter_mut().enumerate() {
            f(i, train);
            normalize_train(train, self.num_steps);
        }
    }

    /// Copies `other` into `self`, reusing `self`'s buffers (the
    /// allocation-free counterpart of `*self = other.clone()`).
    pub fn copy_from(&mut self, other: &SpikeRaster) {
        self.num_steps = other.num_steps;
        self.trains.resize_with(other.trains.len(), Vec::new);
        for (dst, src) in self.trains.iter_mut().zip(&other.trains) {
            dst.clone_from(src);
        }
    }
}

/// Clamps every time to the window, sorts, and merges duplicate times — the
/// shared normalisation of [`SpikeRaster::set_train`],
/// [`SpikeRaster::fill_trains`], [`SpikeRaster::map_trains_into`] and
/// [`SpikeRaster::update_trains`].
///
/// The dedup step *enforces* the raster's binary-spike semantics: clamping
/// (or jitter) can land two spikes on the same step, and keeping both would
/// make train lengths disagree with any dense 0/1 view of the raster and
/// double-count the spike in every PSC decode.  Empty trains — the common
/// case under sparse temporal codings — return immediately.
fn normalize_train(times: &mut Vec<u32>, num_steps: u32) {
    if times.is_empty() {
        return;
    }
    let max = num_steps.saturating_sub(1);
    // Fast path: every encoder (and spike deletion, which preserves order)
    // produces strictly increasing in-window trains, so one linear check
    // usually replaces the clamp-sort-dedup work entirely.
    if times.last().is_some_and(|&last| last <= max) && times.windows(2).all(|w| w[0] < w[1]) {
        return;
    }
    for t in times.iter_mut() {
        if *t > max {
            *t = max;
        }
    }
    times.sort_unstable();
    times.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_raster_is_empty() {
        let r = SpikeRaster::new(5, 10);
        assert_eq!(r.num_neurons(), 5);
        assert_eq!(r.num_steps(), 10);
        assert_eq!(r.total_spikes(), 0);
        assert_eq!(r.mean_rate(), 0.0);
    }

    #[test]
    fn set_train_sorts_clamps_and_merges_duplicates() {
        let mut r = SpikeRaster::new(1, 8);
        // 9 and 20 both clamp onto step 7: binary semantics merge them.
        r.set_train(0, vec![9, 3, 20, 1]);
        assert_eq!(r.train(0), &[1, 3, 7]);
        // Explicit duplicates merge too.
        r.set_train(0, vec![2, 2, 2, 5]);
        assert_eq!(r.train(0), &[2, 5]);
        assert_eq!(r.total_spikes(), 2);
    }

    #[test]
    fn active_set_queries_reflect_non_empty_trains() {
        let mut r = SpikeRaster::new(4, 16);
        assert_eq!(r.num_active_trains(), 0);
        assert_eq!(r.density(), 0.0);
        r.set_train(0, vec![3]);
        r.set_train(2, vec![1, 2]);
        assert!(r.is_active(0));
        assert!(!r.is_active(1));
        assert_eq!(r.num_active_trains(), 2);
        assert!((r.density() - 0.5).abs() < 1e-6);
        // Empty rasters report full density: nothing can be skipped.
        assert_eq!(SpikeRaster::new(0, 16).density(), 1.0);
    }

    #[test]
    fn total_and_rate() {
        let mut r = SpikeRaster::new(2, 10);
        r.set_train(0, vec![0, 1, 2]);
        r.set_train(1, vec![5]);
        assert_eq!(r.total_spikes(), 4);
        assert!((r.mean_rate() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn from_trains_round_trips() {
        let r = SpikeRaster::from_trains(vec![vec![1, 2], vec![], vec![3]], 5);
        assert_eq!(r.num_neurons(), 3);
        assert_eq!(r.train(2), &[3]);
    }

    #[test]
    fn map_trains_applies_per_neuron() {
        let r = SpikeRaster::from_trains(vec![vec![1, 2, 3], vec![4]], 10);
        let doubled = r.map_trains(|_, t| t.iter().map(|&x| x * 2).collect());
        assert_eq!(doubled.train(0), &[2, 4, 6]);
        assert_eq!(doubled.train(1), &[8]);
    }

    #[test]
    fn map_trains_into_matches_map_trains() {
        let r = SpikeRaster::from_trains(vec![vec![9, 3, 1], vec![], vec![20, 4]], 8);
        let doubled = r.map_trains(|_, t| t.iter().map(|&x| x * 2).collect());
        let mut reused = SpikeRaster::new(7, 99); // wrong shape: must be reset
        r.map_trains_into(&mut reused, |_, t, out| {
            out.extend(t.iter().map(|&x| x * 2))
        });
        assert_eq!(reused, doubled);
        assert_eq!(reused.num_steps(), 8);
    }

    #[test]
    fn fill_trains_matches_from_trains_and_reuses_buffers() {
        let trains = vec![vec![5u32, 1, 30], vec![], vec![2]];
        let reference = SpikeRaster::from_trains(trains.clone(), 16);
        let mut r = SpikeRaster::from_trains(vec![vec![1, 2, 3, 4]], 4);
        r.fill_trains(3, 16, |i, out| out.extend_from_slice(&trains[i]));
        assert_eq!(r, reference);
        // Refilling with fewer spikes keeps the raster consistent.
        r.fill_trains(2, 16, |_, out| out.push(1));
        assert_eq!(r.num_neurons(), 2);
        assert_eq!(r.total_spikes(), 2);
    }

    #[test]
    fn copy_from_replicates_any_shape() {
        let src = SpikeRaster::from_trains(vec![vec![1, 2], vec![7]], 12);
        let mut dst = SpikeRaster::new(5, 3);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn iter_yields_all_neurons() {
        let r = SpikeRaster::from_trains(vec![vec![1], vec![2], vec![]], 4);
        assert_eq!(r.iter().count(), 3);
        let counts: Vec<usize> = r.iter().map(|(_, t)| t.len()).collect();
        assert_eq!(counts, vec![1, 1, 0]);
    }
}
