//! Converted spiking networks and their clock-driven simulation.
//!
//! Two simulation paths share one arithmetic core and produce bit-identical
//! results:
//!
//! * the **workspace path** — [`SnnNetwork::simulate_with`] /
//!   [`SnnNetwork::simulate_batch`] write every intermediate (rasters,
//!   decoded activations, matmul scratch) into a caller-provided
//!   [`SimWorkspace`], allocating nothing in steady state;
//! * the **reference path** — [`SnnNetwork::simulate_unbuffered`] keeps the
//!   original allocate-per-call implementation as an executable
//!   specification; the `workspace_bit_identity` integration tests assert
//!   byte-for-byte equality between the two, and the `sim_throughput` bench
//!   measures the speedup.
//!
//! The workspace path is additionally **sparsity-aware**: each layer decodes
//! only the active (non-empty) spike trains and, under the default
//! [`SparsityPolicy::AutoTuned`], switches to gather kernels that touch only the
//! nonzero decoded activations whenever the measured density drops below the
//! policy threshold.  Because the skipped terms are all exact `w · 0.0`
//! products, the sparse kernels are bit-identical to the dense ones — the
//! `sparse_throughput` bench asserts byte-equal logits before timing the
//! speedup, which (unlike the dense engine) grows with how few spikes the
//! coding emits and how many of them the noise deletes.
//!
//! [`SnnNetwork::simulate`] is a thin wrapper over a one-shot workspace, so
//! existing callers keep their API and gain the allocation-free inner loop.

use std::ops::Range;
// nrsnn-lint: allow(forbidden-api) -- stage tracing needs a raw monotonic
// stamp and snn must stay obs-free (layering); serve converts these spans
// onto the obs epoch at ingest.
use std::time::Instant;

use nrsnn_tensor::{
    im2col, im2col_slices, matmul_sparse_into, matmul_sparse_slices, matvec_bias_slices,
    matvec_sparse_slices, transpose, transpose_slices, Conv2dGeometry, Pool2dGeometry, Tensor,
};
use rand::RngCore;

use crate::workspace::ConvScratch;
use crate::{
    BatchOutcome, CodingConfig, CodingScratch, NeuralCoding, Result, SimStage, SimWorkspace,
    SnnError, SpikeRaster, StageEvent,
};

/// How the simulation engine chooses between the dense and the
/// sparsity-aware kernels for each weighted layer.
///
/// Both kernel families are **bit-identical** (the sparse kernels only skip
/// terms of the form `w · 0.0`, which are bitwise no-ops on a bias-seeded
/// accumulator — see `nrsnn_tensor::matvec_sparse_slices`), so the policy is
/// purely a performance knob: it can never change a logit, a prediction or
/// an RNG stream.  The default [`SparsityPolicy::AutoTuned`] measures each
/// layer's decoded-input density per sample and picks the sparse kernel
/// below the threshold — which is what makes simulation speed a function of
/// the neural coding: a TTFS raster whose trains were half-deleted decodes
/// to a half-empty activation vector and pays for only the active half.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsityPolicy {
    /// The default: per layer and per sample, use the sparse kernels when
    /// the measured input density is at most the crossover calibrated for
    /// the **currently active SIMD backend**
    /// ([`SparsityPolicy::max_density_for`]).  The backend is queried at
    /// decision time, so a policy built before an
    /// `nrsnn_tensor::simd::set_backend` call still picks the right
    /// kernel afterwards.
    AutoTuned,
    /// Like [`SparsityPolicy::AutoTuned`] with an explicit, fixed
    /// crossover: use the sparse kernels when the measured input density
    /// (`nonzero inputs / input width`) is at most `max_density`, the
    /// dense kernels otherwise.
    Auto {
        /// Density at or below which the sparse kernels are chosen.
        max_density: f32,
    },
    /// Always use the dense kernels (the pre-sparsity engine, and the
    /// baseline the `sparse_throughput` bench compares against).
    Dense,
    /// Always use the sparse kernels, whatever the density (used by the
    /// bit-identity tests and the allocation regression test).
    Sparse,
}

impl SparsityPolicy {
    /// [`SparsityPolicy::AutoTuned`] crossover on the scalar backend.
    ///
    /// The sparse matvec performs `d·n` register multiply-adds per row
    /// against the dense kernel's `n`, but the dense kernel's lane-blocked
    /// loop auto-vectorises even when built for the "scalar" backend, so
    /// the measured crossover (sparse_throughput bench, MNIST-like MLP)
    /// sits near `d = 0.3`: 1.0x at d=0.30, ~1.4-1.8x at d=0.12, ~1.9x at
    /// d=0.06.  (Before the dense kernels were vectorised this constant
    /// was 0.75 — the crossover is a property of the dense engine's speed,
    /// and re-measuring it after the SIMD rewrite moved it down.)
    pub const SCALAR_MAX_DENSITY: f32 = 0.3;

    /// [`SparsityPolicy::AutoTuned`] crossover on vector backends
    /// (SSE2/AVX2), where the dense kernels are another 2-3x faster while
    /// the sparse gather loop — deliberately scalar, see
    /// `nrsnn_tensor::matvec_sparse_slices` — is not, pushing the
    /// crossover down to roughly one active input in ten.
    pub const VECTOR_MAX_DENSITY: f32 = 0.1;

    /// The crossover density [`SparsityPolicy::AutoTuned`] applies on the
    /// given SIMD backend.
    pub fn max_density_for(backend: nrsnn_tensor::simd::SimdBackend) -> f32 {
        if backend.is_vector() {
            SparsityPolicy::VECTOR_MAX_DENSITY
        } else {
            SparsityPolicy::SCALAR_MAX_DENSITY
        }
    }

    /// The default policy: [`SparsityPolicy::AutoTuned`] auto-selection
    /// with the crossover calibrated to the active SIMD backend.
    pub fn auto() -> Self {
        SparsityPolicy::AutoTuned
    }

    /// Whether a layer with the given measured input density should take
    /// the sparse kernels under this policy.
    fn use_sparse(&self, density: f32) -> bool {
        match self {
            SparsityPolicy::AutoTuned => {
                density <= SparsityPolicy::max_density_for(nrsnn_tensor::simd::active_backend())
            }
            SparsityPolicy::Auto { max_density } => density <= *max_density,
            SparsityPolicy::Dense => false,
            SparsityPolicy::Sparse => true,
        }
    }
}

impl Default for SparsityPolicy {
    fn default() -> Self {
        SparsityPolicy::auto()
    }
}

/// One layer of a converted spiking network.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnLayer {
    /// Fully connected layer with normalised weights `(out x in)` and bias.
    Linear {
        /// Normalised weight matrix.
        weights: Tensor,
        /// Normalised bias vector.
        bias: Tensor,
    },
    /// Convolution layer with flattened kernel bank `(out_ch x patch)`.
    Conv {
        /// Normalised, flattened kernel bank.
        weights: Tensor,
        /// Normalised bias vector.
        bias: Tensor,
        /// Convolution geometry.
        geometry: Conv2dGeometry,
    },
    /// Average pooling (parameter-free).
    AvgPool {
        /// Pooling geometry.
        geometry: Pool2dGeometry,
    },
}

impl SnnLayer {
    /// Input width of the layer.
    pub fn input_width(&self) -> usize {
        match self {
            SnnLayer::Linear { weights, .. } => weights.dims()[1],
            SnnLayer::Conv { geometry, .. } => geometry.in_len(),
            SnnLayer::AvgPool { geometry } => geometry.in_len(),
        }
    }

    /// Output width of the layer.
    pub fn output_width(&self) -> usize {
        match self {
            SnnLayer::Linear { weights, .. } => weights.dims()[0],
            SnnLayer::Conv {
                weights, geometry, ..
            } => weights.dims()[0] * geometry.out_positions(),
            SnnLayer::AvgPool { geometry } => geometry.out_len(),
        }
    }

    /// Returns `true` if the layer carries synaptic weights.
    pub fn has_weights(&self) -> bool {
        !matches!(self, SnnLayer::AvgPool { .. })
    }

    /// Multiplies the layer's synaptic weights by `factor` (weight scaling).
    pub fn scale_weights(&mut self, factor: f32) {
        match self {
            SnnLayer::Linear { weights, .. } | SnnLayer::Conv { weights, .. } => {
                *weights = weights.scale(factor);
            }
            SnnLayer::AvgPool { .. } => {}
        }
    }

    /// Analog forward pass of this layer on a dense activation vector, with
    /// ReLU left to the caller.
    ///
    /// Weighted layers seed their accumulators from the bias and add the
    /// input terms in ascending index order — the exact operation order of
    /// the dense *and* sparse workspace kernels, so all three simulation
    /// paths stay bit-identical.
    fn forward_analog(&self, input: &[f32]) -> Result<Vec<f32>> {
        match self {
            SnnLayer::Linear { weights, bias } => {
                let (m, n) = (weights.dims()[0], weights.dims()[1]);
                let mut out = vec![0.0f32; m];
                matvec_bias_slices(weights.as_slice(), m, n, input, bias.as_slice(), &mut out);
                Ok(out)
            }
            SnnLayer::Conv {
                weights,
                bias,
                geometry,
            } => {
                let x = Tensor::from_slice(input);
                let cols = im2col(&x, geometry)?;
                let wt = transpose(weights)?;
                // (positions x out_ch), bias folded into the accumulator seed.
                let mut prod = Vec::new();
                matmul_sparse_into(&cols, &wt, bias, &mut prod)?;
                let positions = geometry.out_positions();
                let out_ch = weights.dims()[0];
                let mut out = vec![0.0f32; out_ch * positions];
                for c in 0..out_ch {
                    for p in 0..positions {
                        out[c * positions + p] = prod[p * out_ch + c];
                    }
                }
                Ok(out)
            }
            SnnLayer::AvgPool { geometry } => {
                let g = geometry;
                let (oh, ow) = (g.out_height(), g.out_width());
                let mut out = vec![0.0f32; g.out_len()];
                let area = (g.window * g.window) as f32;
                for c in 0..g.channels {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0;
                            for ky in 0..g.window {
                                for kx in 0..g.window {
                                    let iy = oy * g.stride + ky;
                                    let ix = ox * g.stride + kx;
                                    acc +=
                                        input[c * g.in_height * g.in_width + iy * g.in_width + ix];
                                }
                            }
                            out[c * oh * ow + oy * ow + ox] = acc / area;
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Allocation-free analog forward pass: writes the layer output into
    /// `out` (cleared and resized, capacity kept), using `scratch` for the
    /// convolution intermediates.
    ///
    /// Performs the same floating-point operations in the same order as
    /// [`SnnLayer::forward_analog`], so the two produce bit-identical
    /// results.
    fn forward_analog_into(&self, input: &[f32], scratch: &mut ConvScratch, out: &mut Vec<f32>) {
        match self {
            SnnLayer::Linear { weights, bias } => {
                let (m, n) = (weights.dims()[0], weights.dims()[1]);
                out.clear();
                out.resize(m, 0.0);
                matvec_bias_slices(weights.as_slice(), m, n, input, bias.as_slice(), out);
            }
            SnnLayer::Conv {
                weights,
                bias,
                geometry,
            } => {
                let patch = geometry.patch_len();
                let positions = geometry.out_positions();
                let out_ch = weights.dims()[0];
                scratch.cols.clear();
                scratch.cols.resize(positions * patch, 0.0);
                im2col_slices(input, geometry, &mut scratch.cols);
                scratch.weights_t.clear();
                scratch.weights_t.resize(patch * out_ch, 0.0);
                transpose_slices(weights.as_slice(), out_ch, patch, &mut scratch.weights_t);
                scratch.prod.clear();
                scratch.prod.resize(positions * out_ch, 0.0);
                // Bias-seeded and skipping exact-zero patch entries: the
                // convolution arm is inherently input-sparsity-aware, its
                // FLOPs scale with the number of nonzero decoded activations
                // gathered into the patch matrix.
                matmul_sparse_slices(
                    &scratch.cols,
                    positions,
                    patch,
                    &scratch.weights_t,
                    out_ch,
                    bias.as_slice(),
                    &mut scratch.prod,
                );
                out.clear();
                out.resize(out_ch * positions, 0.0);
                for c in 0..out_ch {
                    for p in 0..positions {
                        out[c * positions + p] = scratch.prod[p * out_ch + c];
                    }
                }
            }
            SnnLayer::AvgPool { geometry } => {
                let g = geometry;
                let (oh, ow) = (g.out_height(), g.out_width());
                out.clear();
                out.resize(g.out_len(), 0.0);
                let area = (g.window * g.window) as f32;
                for c in 0..g.channels {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0;
                            for ky in 0..g.window {
                                for kx in 0..g.window {
                                    let iy = oy * g.stride + ky;
                                    let ix = ox * g.stride + kx;
                                    acc +=
                                        input[c * g.in_height * g.in_width + iy * g.in_width + ix];
                                }
                            }
                            out[c * oh * ow + oy * ow + ox] = acc / area;
                        }
                    }
                }
            }
        }
    }

    /// Sparsity-aware sibling of [`SnnLayer::forward_analog_into`]: `active`
    /// holds the ascending indices of the nonzero entries of `input`, and
    /// fully connected layers restrict their dot products to those columns
    /// (`O(m·|active|)` instead of `O(m·n)`).
    ///
    /// Bit-identical to the dense pass by the sparse-kernel contract: the
    /// skipped terms are all `w · 0.0`, bitwise no-ops on the bias-seeded
    /// accumulator.  Convolutions and pooling delegate to the dense pass —
    /// the convolution's patch-matrix kernel already skips exact-zero
    /// activations element-wise, so its FLOPs scale with `|active|` either
    /// way.
    fn forward_sparse_into(
        &self,
        input: &[f32],
        active: &[u32],
        scratch: &mut ConvScratch,
        out: &mut Vec<f32>,
    ) {
        match self {
            SnnLayer::Linear { weights, bias } => {
                let (m, n) = (weights.dims()[0], weights.dims()[1]);
                out.clear();
                out.resize(m, 0.0);
                matvec_sparse_slices(
                    weights.as_slice(),
                    m,
                    n,
                    input,
                    active,
                    bias.as_slice(),
                    out,
                );
            }
            SnnLayer::Conv { .. } | SnnLayer::AvgPool { .. } => {
                self.forward_analog_into(input, scratch, out);
            }
        }
    }
}

/// A transformation applied to every layer-to-layer spike raster during
/// simulation.
///
/// `nrsnn-noise` implements spike deletion and jitter on top of this hook;
/// [`IdentityTransform`] is the noise-free baseline.
///
/// Transforms must be `Send + Sync`: the sweep engine in `nrsnn` fans one
/// noise model out across a thread pool, with every simulation task holding
/// a shared reference to it.  Randomness is never stored in the transform —
/// it flows in per call through the `rng` parameter — so implementations are
/// naturally immutable state plus parameters.
pub trait SpikeTransform: Send + Sync {
    /// Produces the (possibly corrupted) raster actually received by the
    /// next layer.
    fn apply(&self, raster: &SpikeRaster, rng: &mut dyn RngCore) -> SpikeRaster;

    /// In-place sibling of [`SpikeTransform::apply`]: writes the transformed
    /// raster into `out`, reusing its buffers.
    ///
    /// Must produce the same raster as `apply` and consume the RNG in the
    /// same order.  The default delegates to `apply` (allocating);
    /// implementations on the hot path override it with an allocation-free
    /// version (see `nrsnn-noise`).
    fn apply_into(&self, raster: &SpikeRaster, out: &mut SpikeRaster, rng: &mut dyn RngCore) {
        *out = self.apply(raster, rng);
    }

    /// Mutating variant of [`SpikeTransform::apply`]: transforms `raster` in
    /// place.
    ///
    /// Must produce the same raster as `apply` and consume the RNG in the
    /// same order.  The default buffers through a scratch raster
    /// (allocating); the deletion/jitter models in `nrsnn-noise` override it
    /// allocation-free, which is what keeps multi-stage `CompositeNoise`
    /// chains allocation-free too — the composite writes its first stage via
    /// `apply_into` and applies the remaining stages in place.
    fn apply_in_place(&self, raster: &mut SpikeRaster, rng: &mut dyn RngCore) {
        let mut scratch = SpikeRaster::default();
        self.apply_into(raster, &mut scratch, rng);
        raster.copy_from(&scratch);
    }

    /// Returns `true` if `apply` is guaranteed to return the raster
    /// unchanged *and* to consume no randomness for the current parameters
    /// (e.g. deletion with `p = 0`).
    ///
    /// The simulation engine uses this to skip the transform entirely on the
    /// no-noise path instead of cloning the full raster; because an identity
    /// transform draws nothing from the RNG, skipping it leaves all
    /// downstream random draws — and therefore all results — unchanged.
    fn is_identity(&self) -> bool {
        false
    }

    /// Short description used in reports.
    fn describe(&self) -> String {
        "unnamed transform".to_string()
    }
}

/// The no-noise transform: spikes pass through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityTransform;

impl SpikeTransform for IdentityTransform {
    fn apply(&self, raster: &SpikeRaster, _rng: &mut dyn RngCore) -> SpikeRaster {
        raster.clone()
    }

    fn apply_into(&self, raster: &SpikeRaster, out: &mut SpikeRaster, _rng: &mut dyn RngCore) {
        out.copy_from(raster);
    }

    fn apply_in_place(&self, _raster: &mut SpikeRaster, _rng: &mut dyn RngCore) {}

    fn is_identity(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        "clean".to_string()
    }
}

/// Everything measured during one simulated inference.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationOutcome {
    /// Output-layer activations (analog read-out of the last layer).
    pub logits: Vec<f32>,
    /// Index of the winning output neuron.
    pub predicted: usize,
    /// Total number of spikes transmitted across all layers (after noise).
    pub total_spikes: usize,
    /// Number of transmitted spikes per raster (input raster first).
    pub spikes_per_layer: Vec<usize>,
}

/// A converted spiking network: a chain of [`SnnLayer`]s simulated layer by
/// layer under a chosen neural coding.
#[derive(Debug, Clone, PartialEq)]
pub struct SnnNetwork {
    layers: Vec<SnnLayer>,
    sparsity: SparsityPolicy,
}

impl SnnNetwork {
    /// Creates a network after validating that consecutive layer widths
    /// match.  The simulation engine starts on the default
    /// [`SparsityPolicy::auto`]; see [`SnnNetwork::with_sparsity`].
    ///
    /// # Errors
    /// Returns [`SnnError::Conversion`] for an empty chain or mismatched
    /// widths.
    pub fn new(layers: Vec<SnnLayer>) -> Result<Self> {
        if layers.is_empty() {
            return Err(SnnError::Conversion(
                "network needs at least one layer".to_string(),
            ));
        }
        for pair in layers.windows(2) {
            if pair[0].output_width() != pair[1].input_width() {
                return Err(SnnError::Conversion(format!(
                    "layer width mismatch: {} feeds {}",
                    pair[0].output_width(),
                    pair[1].input_width()
                )));
            }
        }
        Ok(SnnNetwork {
            layers,
            sparsity: SparsityPolicy::default(),
        })
    }

    /// Sets the kernel-selection policy of the simulation engine (builder
    /// style).  Purely a performance knob: every policy produces
    /// bit-identical results, as pinned by the `workspace_bit_identity`
    /// integration tests.
    #[must_use]
    pub fn with_sparsity(mut self, sparsity: SparsityPolicy) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// The kernel-selection policy the simulation engine runs under.
    pub fn sparsity(&self) -> SparsityPolicy {
        self.sparsity
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[SnnLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input width expected by the first layer.
    pub fn input_width(&self) -> usize {
        self.layers[0].input_width()
    }

    /// Output width produced by the last layer.
    pub fn output_width(&self) -> usize {
        self.layers[self.layers.len() - 1].output_width()
    }

    /// Multiplies every synaptic weight by `factor` (the paper's weight
    /// scaling compensation, applied after conversion).
    pub fn scale_weights(&mut self, factor: f32) {
        for layer in &mut self.layers {
            layer.scale_weights(factor);
        }
    }

    /// Analog (non-spiking) forward pass of layer `index` — used by tests
    /// and by the conversion sanity checks.
    ///
    /// # Errors
    /// Returns [`SnnError::InputMismatch`] for a wrong input width.
    pub fn analog_forward_layer(&self, index: usize, input: &[f32]) -> Result<Vec<f32>> {
        let layer = &self.layers[index];
        if input.len() != layer.input_width() {
            return Err(SnnError::InputMismatch {
                expected: layer.input_width(),
                actual: input.len(),
            });
        }
        let mut out = layer.forward_analog(input)?;
        if index + 1 < self.layers.len() {
            for v in &mut out {
                *v = v.max(0.0);
            }
        }
        Ok(out)
    }

    /// Full analog forward pass (the converted network run as a plain ReLU
    /// network) — the reference against which spiking accuracy is compared.
    ///
    /// # Errors
    /// Returns [`SnnError::InputMismatch`] for a wrong input width.
    pub fn analog_forward(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut x = input.to_vec();
        for i in 0..self.layers.len() {
            x = self.analog_forward_layer(i, &x)?;
        }
        Ok(x)
    }

    /// Simulates one inference under `coding`, injecting `noise` into every
    /// transmitted spike raster (including the input raster).
    ///
    /// This is a thin wrapper over a one-shot [`SimWorkspace`]; use
    /// [`SnnNetwork::simulate_with`] or [`SnnNetwork::simulate_batch`] to
    /// amortise the workspace across many samples.  Results are bit-identical
    /// to [`SnnNetwork::simulate_unbuffered`].
    ///
    /// # Errors
    /// Returns [`SnnError::InputMismatch`] if the input width is wrong or
    /// configuration errors from `cfg`.
    pub fn simulate(
        &self,
        input: &[f32],
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng: &mut dyn RngCore,
    ) -> Result<SimulationOutcome> {
        let mut ws = SimWorkspace::new();
        let outcome = self.simulate_with(input, coding, cfg, noise, rng, &mut ws)?;
        Ok(SimulationOutcome {
            logits: ws.logits().to_vec(),
            predicted: outcome.predicted,
            total_spikes: outcome.total_spikes,
            spikes_per_layer: ws.spikes_per_layer().to_vec(),
        })
    }

    /// The original allocate-per-call simulation, kept as the executable
    /// reference for the workspace path: the `workspace_bit_identity`
    /// integration tests assert byte-for-byte equality against
    /// [`SnnNetwork::simulate`], and the `sim_throughput` bench measures the
    /// allocating-vs-workspace speedup.
    ///
    /// # Errors
    /// Returns [`SnnError::InputMismatch`] if the input width is wrong or
    /// configuration errors from `cfg`.
    pub fn simulate_unbuffered(
        &self,
        input: &[f32],
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng: &mut dyn RngCore,
    ) -> Result<SimulationOutcome> {
        cfg.validate()?;
        if input.len() != self.input_width() {
            return Err(SnnError::InputMismatch {
                expected: self.input_width(),
                actual: input.len(),
            });
        }

        let mut spikes_per_layer = Vec::with_capacity(self.layers.len() + 1);
        // Encode the input pixels as the first spike raster.  Pixels are in
        // [0, 1]; the coding clamps to its ceiling.
        let mut raster = encode_vector(input, coding, cfg);
        let mut logits = Vec::new();

        for (index, layer) in self.layers.iter().enumerate() {
            // Synaptic noise corrupts the spikes actually transmitted to
            // this layer.
            let received = noise.apply(&raster, rng);
            spikes_per_layer.push(received.total_spikes());

            // Integrate the received trains through the coding's PSC kernel.
            let decoded: Vec<f32> = (0..received.num_neurons())
                .map(|n| coding.decode(received.train(n), cfg))
                .collect();

            let mut activation = layer.forward_analog(&decoded)?;
            let is_last = index + 1 == self.layers.len();
            if is_last {
                logits = activation;
            } else {
                for v in &mut activation {
                    *v = v.max(0.0);
                }
                raster = encode_vector(&activation, coding, cfg);
            }
        }

        let predicted = argmax(&logits);
        let total_spikes = spikes_per_layer.iter().sum();
        Ok(SimulationOutcome {
            logits,
            predicted,
            total_spikes,
            spikes_per_layer,
        })
    }

    /// Simulates one inference through a reusable [`SimWorkspace`],
    /// returning the compact [`BatchOutcome`]; the logits and per-layer
    /// spike counts stay readable from the workspace.
    ///
    /// # Errors
    /// Returns [`SnnError::InputMismatch`] if the input width is wrong or
    /// configuration errors from `cfg`.
    pub fn simulate_with(
        &self,
        input: &[f32],
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng: &mut dyn RngCore,
        ws: &mut SimWorkspace,
    ) -> Result<BatchOutcome> {
        cfg.validate()?;
        if input.len() != self.input_width() {
            return Err(SnnError::InputMismatch {
                expected: self.input_width(),
                actual: input.len(),
            });
        }
        Ok(self.simulate_core(input, coding, cfg, noise, rng, ws))
    }

    /// Simulates the samples `range` of the rank-2 `inputs` tensor through
    /// one shared workspace, appending one [`BatchOutcome`] per sample to
    /// `out` (cleared first, capacity kept).
    ///
    /// Each sample is simulated with the RNG produced by
    /// `rng_for(sample_index)`, so callers control per-sample determinism
    /// (the sweep engine derives one seed per sample, making results
    /// independent of batching and thread count).  The configuration is
    /// validated **once** per call instead of once per sample.
    ///
    /// After warm-up, steady-state simulation through this entry point
    /// performs zero heap allocations per sample (see the
    /// `alloc_regression` integration test).
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] for a non-rank-2 input tensor or
    /// an out-of-range sample range, [`SnnError::InputMismatch`] for a wrong
    /// sample width, and configuration errors from `cfg`.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_batch<R, F>(
        &self,
        inputs: &Tensor,
        range: Range<usize>,
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng_for: F,
        ws: &mut SimWorkspace,
        out: &mut Vec<BatchOutcome>,
    ) -> Result<()>
    where
        F: FnMut(usize) -> R,
        R: RngCore,
    {
        out.clear();
        self.simulate_batch_each(inputs, range, coding, cfg, noise, rng_for, ws, |_, o, _| {
            out.push(o);
        })
    }

    /// [`SnnNetwork::simulate_batch`] with a per-sample sink: after each
    /// sample, `each(sample, outcome, workspace)` is invoked while that
    /// sample's logits and per-layer spike counts are still readable from
    /// the workspace ([`SimWorkspace::logits`] /
    /// [`SimWorkspace::spikes_per_layer`]).
    ///
    /// This is the entry point for callers that need per-sample dense
    /// outputs without allocating one `Vec` per sample up front — the
    /// `nrsnn-serve` dynamic batcher copies each request's logits into its
    /// response buffer from here.  Samples are visited in `range` order.
    ///
    /// # Errors
    /// Same contract as [`SnnNetwork::simulate_batch`].
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_batch_each<R, F, G>(
        &self,
        inputs: &Tensor,
        range: Range<usize>,
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        mut rng_for: F,
        ws: &mut SimWorkspace,
        mut each: G,
    ) -> Result<()>
    where
        F: FnMut(usize) -> R,
        R: RngCore,
        G: FnMut(usize, BatchOutcome, &SimWorkspace),
    {
        cfg.validate()?;
        if inputs.shape().rank() != 2 {
            return Err(SnnError::InvalidConfig(format!(
                "simulate_batch expects a rank-2 input tensor, got shape {:?}",
                inputs.dims()
            )));
        }
        if inputs.dims()[1] != self.input_width() {
            return Err(SnnError::InputMismatch {
                expected: self.input_width(),
                actual: inputs.dims()[1],
            });
        }
        if range.end > inputs.dims()[0] {
            return Err(SnnError::InvalidConfig(format!(
                "sample range {}..{} exceeds the {} available rows",
                range.start,
                range.end,
                inputs.dims()[0]
            )));
        }
        for sample in range {
            let row = inputs.row_slice(sample)?;
            let mut rng = rng_for(sample);
            let outcome = self.simulate_core(row, coding, cfg, noise, &mut rng, ws);
            each(sample, outcome, ws);
        }
        Ok(())
    }

    /// The shared arithmetic core of every simulation path.  Assumes the
    /// configuration and input width have been validated by the caller.
    fn simulate_core(
        &self,
        input: &[f32],
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng: &mut dyn RngCore,
        ws: &mut SimWorkspace,
    ) -> BatchOutcome {
        let num_layers = self.layers.len();
        // Grow (never shrink) the per-layer raster and active-index pools,
        // so buffers reach a fixed point and later samples allocate nothing.
        if ws.rasters.len() < num_layers {
            ws.rasters.resize_with(num_layers, SpikeRaster::default);
        }
        if ws.received.len() < num_layers {
            ws.received.resize_with(num_layers, SpikeRaster::default);
        }
        if ws.active.len() < num_layers {
            ws.active.resize_with(num_layers, Vec::new);
        }
        ws.spikes_per_layer.clear();
        ws.density_per_layer.clear();
        ws.stage_events.clear();
        // Stage tracing piggybacks on the phase boundaries: each event ends
        // where the next begins, so the events tile the simulation exactly
        // and cost one `Instant::now()` per boundary.  `None` when tracing
        // is off — the untraced path never reads the clock.  The clock is
        // not the RNG: timestamps cannot perturb results.
        let mut mark: Option<Instant> = if ws.trace_enabled {
            Some(Instant::now())
        } else {
            None
        };
        // Encode the input pixels as the first spike raster.  Pixels are in
        // [0, 1]; the coding clamps to its ceiling.
        encode_vector_into(
            input,
            coding,
            cfg,
            &mut ws.rasters[0],
            &mut ws.encode_scratch,
        );
        stage_mark(
            &mut ws.stage_events,
            &mut mark,
            SimStage::Encode,
            0,
            false,
            0.0,
        );
        // Skipping an identity transform is exact: it would neither change
        // the raster nor consume randomness (see SpikeTransform::is_identity).
        let skip_noise = noise.is_identity();

        for (index, layer) in self.layers.iter().enumerate() {
            // Synaptic noise corrupts the spikes actually transmitted to
            // this layer.
            let received = if skip_noise {
                &ws.rasters[index]
            } else {
                noise.apply_into(&ws.rasters[index], &mut ws.received[index], rng);
                stage_mark(
                    &mut ws.stage_events,
                    &mut mark,
                    SimStage::Noise,
                    index as u32,
                    false,
                    0.0,
                );
                &ws.received[index]
            };
            ws.spikes_per_layer.push(received.total_spikes());

            // Auto kernel selection on the raster's measured density (the
            // fraction of neurons that fired at all — the active set the
            // raster tracks).  Either branch produces bit-identical
            // activations: the sparse branch only skips decoding silent
            // trains (which decode to exactly +0.0) and `w · 0.0` product
            // terms, so this is purely a speed decision.
            let density = received.density();
            ws.density_per_layer.push(density);
            // Both branches decode through `decode_active_into` — its `out`
            // is bit-identical to `decode_into` by contract, and codings
            // with a tabulated PSC kernel (TTAS/TTFS/phase) amortise it
            // there, which the dense branch profits from too.  The branch
            // only decides which matrix kernels consume the activations.
            let active = &mut ws.active[index];
            coding.decode_active_into(
                received,
                cfg,
                &mut ws.decoded,
                active,
                &mut ws.decode_scratch,
            );
            stage_mark(
                &mut ws.stage_events,
                &mut mark,
                SimStage::Decode,
                index as u32,
                false,
                0.0,
            );
            let sparse = layer.has_weights() && self.sparsity.use_sparse(density);
            if sparse {
                // Sparse branch: the gather kernels restrict themselves to
                // the nonzero column set collected during the decode.
                layer.forward_sparse_into(&ws.decoded, active, &mut ws.conv, &mut ws.activation);
            } else {
                // Dense branch: scan every column.
                layer.forward_analog_into(&ws.decoded, &mut ws.conv, &mut ws.activation);
            }
            stage_mark(
                &mut ws.stage_events,
                &mut mark,
                SimStage::Forward,
                index as u32,
                sparse,
                density,
            );
            let is_last = index + 1 == num_layers;
            if !is_last {
                for v in &mut ws.activation {
                    *v = v.max(0.0);
                }
                encode_vector_into(
                    &ws.activation,
                    coding,
                    cfg,
                    &mut ws.rasters[index + 1],
                    &mut ws.encode_scratch,
                );
                stage_mark(
                    &mut ws.stage_events,
                    &mut mark,
                    SimStage::Encode,
                    index as u32 + 1,
                    false,
                    0.0,
                );
            }
        }

        BatchOutcome {
            predicted: argmax(&ws.activation),
            total_spikes: ws.spikes_per_layer.iter().sum(),
        }
    }

    /// Simulates every row of `inputs` and reports accuracy and spike
    /// statistics against `labels`.
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] if the label count does not match
    /// the number of rows; propagates simulation errors.
    pub fn evaluate(
        &self,
        inputs: &Tensor,
        labels: &[usize],
        coding: &dyn NeuralCoding,
        cfg: &CodingConfig,
        noise: &dyn SpikeTransform,
        rng: &mut dyn RngCore,
    ) -> Result<EvaluationSummary> {
        if inputs.shape().rank() != 2 || inputs.dims()[0] != labels.len() {
            return Err(SnnError::InvalidConfig(format!(
                "inputs shape {:?} incompatible with {} labels",
                inputs.dims(),
                labels.len()
            )));
        }
        // One workspace amortised over the whole evaluation; the coding
        // configuration is validated once instead of once per sample.
        cfg.validate()?;
        if inputs.dims()[1] != self.input_width() {
            return Err(SnnError::InputMismatch {
                expected: self.input_width(),
                actual: inputs.dims()[1],
            });
        }
        let mut ws = SimWorkspace::new();
        let mut correct = 0usize;
        let mut total_spikes = 0usize;
        for (i, &label) in labels.iter().enumerate() {
            let row = inputs.row_slice(i)?;
            let outcome = self.simulate_core(row, coding, cfg, noise, rng, &mut ws);
            if outcome.predicted == label {
                correct += 1;
            }
            total_spikes += outcome.total_spikes;
        }
        let samples = labels.len().max(1);
        Ok(EvaluationSummary {
            accuracy: correct as f32 / samples as f32,
            mean_spikes_per_sample: total_spikes as f32 / samples as f32,
            total_spikes,
            samples: labels.len(),
        })
    }
}

/// Aggregate result of [`SnnNetwork::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationSummary {
    /// Fraction of correctly classified samples.
    pub accuracy: f32,
    /// Average number of transmitted spikes per inference.
    pub mean_spikes_per_sample: f32,
    /// Total number of transmitted spikes over the whole evaluation.
    pub total_spikes: usize,
    /// Number of evaluated samples.
    pub samples: usize,
}

impl EvaluationSummary {
    /// Accuracy in percent (as reported in the paper's tables).
    pub fn accuracy_percent(&self) -> f32 {
        self.accuracy * 100.0
    }
}

fn encode_vector(values: &[f32], coding: &dyn NeuralCoding, cfg: &CodingConfig) -> SpikeRaster {
    let trains = values.iter().map(|&v| coding.encode(v, cfg)).collect();
    SpikeRaster::from_trains(trains, cfg.time_steps)
}

/// Allocation-free sibling of [`encode_vector`]: refills `raster` in place
/// through the coding's lane-blocked block path (8 neurons per SIMD block,
/// SoA intermediates in `scratch`), producing the identical raster.
fn encode_vector_into(
    values: &[f32],
    coding: &dyn NeuralCoding,
    cfg: &CodingConfig,
    raster: &mut SpikeRaster,
    scratch: &mut CodingScratch,
) {
    coding.encode_raster_into(values, cfg, raster, scratch);
}

/// Closes the current tracing interval at `Instant::now()`, pushing one
/// [`StageEvent`] and opening the next interval at the same timestamp — so
/// consecutive events tile the simulation with no gaps.  A no-op (no clock
/// read, no push) when tracing is disabled (`mark` is `None`).
#[inline]
fn stage_mark(
    events: &mut Vec<StageEvent>,
    mark: &mut Option<Instant>,
    stage: SimStage,
    layer: u32,
    sparse: bool,
    density: f32,
) {
    if let Some(start) = *mark {
        let end = Instant::now();
        events.push(StageEvent {
            stage,
            layer,
            start,
            end,
            sparse,
            density,
        });
        *mark = Some(end);
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
            if v > bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RateCoding, TtasCoding, TtfsCoding};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A hand-built 2-layer network: the first layer passes through two
    /// inputs, the second sums them into two outputs with opposite signs so
    /// the prediction flips depending on which input is larger.
    fn toy_network() -> SnnNetwork {
        let l0 = SnnLayer::Linear {
            weights: Tensor::eye(2),
            bias: Tensor::zeros(&[2]),
        };
        let l1 = SnnLayer::Linear {
            weights: Tensor::from_vec(vec![1.0, -1.0, -1.0, 1.0], &[2, 2]).unwrap(),
            bias: Tensor::zeros(&[2]),
        };
        SnnNetwork::new(vec![l0, l1]).unwrap()
    }

    #[test]
    fn new_validates_width_chain() {
        let bad = vec![
            SnnLayer::Linear {
                weights: Tensor::zeros(&[3, 2]),
                bias: Tensor::zeros(&[3]),
            },
            SnnLayer::Linear {
                weights: Tensor::zeros(&[2, 4]),
                bias: Tensor::zeros(&[2]),
            },
        ];
        assert!(SnnNetwork::new(bad).is_err());
        assert!(SnnNetwork::new(vec![]).is_err());
    }

    #[test]
    fn analog_forward_matches_hand_computation() {
        let net = toy_network();
        let out = net.analog_forward(&[0.8, 0.2]).unwrap();
        assert!((out[0] - 0.6).abs() < 1e-6);
        assert!((out[1] + 0.6).abs() < 1e-6);
    }

    #[test]
    fn simulation_agrees_with_analog_for_rate_coding() {
        let net = toy_network();
        let cfg = CodingConfig::new(200, 1.0);
        let coding = RateCoding::new();
        let mut rng = StdRng::seed_from_u64(0);
        for input in [[0.9f32, 0.1], [0.2, 0.7], [0.55, 0.5]] {
            let analog = net.analog_forward(&input).unwrap();
            let outcome = net
                .simulate(&input, &coding, &cfg, &IdentityTransform, &mut rng)
                .unwrap();
            let analog_pred = argmax(&analog);
            assert_eq!(outcome.predicted, analog_pred, "input {input:?}");
        }
    }

    #[test]
    fn simulation_agrees_with_analog_for_ttfs_and_ttas() {
        let net = toy_network();
        let cfg = CodingConfig::new(128, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for input in [[0.9f32, 0.2], [0.1, 0.8]] {
            let analog_pred = argmax(&net.analog_forward(&input).unwrap());
            let ttfs = net
                .simulate(
                    &input,
                    &TtfsCoding::new(),
                    &cfg,
                    &IdentityTransform,
                    &mut rng,
                )
                .unwrap();
            let ttas = net
                .simulate(
                    &input,
                    &TtasCoding::new(4).unwrap(),
                    &cfg,
                    &IdentityTransform,
                    &mut rng,
                )
                .unwrap();
            assert_eq!(ttfs.predicted, analog_pred);
            assert_eq!(ttas.predicted, analog_pred);
        }
    }

    #[test]
    fn spike_counts_are_reported_per_layer() {
        let net = toy_network();
        let cfg = CodingConfig::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = net
            .simulate(
                &[0.5, 0.5],
                &RateCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.spikes_per_layer.len(), 2);
        assert_eq!(
            outcome.total_spikes,
            outcome.spikes_per_layer.iter().sum::<usize>()
        );
        assert!(outcome.total_spikes > 0);
    }

    #[test]
    fn ttfs_uses_far_fewer_spikes_than_rate() {
        let net = toy_network();
        let cfg = CodingConfig::new(128, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let rate = net
            .simulate(
                &[0.8, 0.6],
                &RateCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng,
            )
            .unwrap();
        let ttfs = net
            .simulate(
                &[0.8, 0.6],
                &TtfsCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng,
            )
            .unwrap();
        assert!(
            ttfs.total_spikes * 10 < rate.total_spikes,
            "ttfs {} rate {}",
            ttfs.total_spikes,
            rate.total_spikes
        );
    }

    #[test]
    fn wrong_input_width_rejected() {
        let net = toy_network();
        let cfg = CodingConfig::new(64, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(net
            .simulate(
                &[0.5],
                &RateCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn evaluate_reports_full_accuracy_on_separable_toy_task() {
        let net = toy_network();
        let cfg = CodingConfig::new(128, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let inputs =
            Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9, 0.7, 0.3, 0.2, 0.8], &[4, 2]).unwrap();
        let labels = vec![0usize, 1, 0, 1];
        let summary = net
            .evaluate(
                &inputs,
                &labels,
                &RateCoding::new(),
                &cfg,
                &IdentityTransform,
                &mut rng,
            )
            .unwrap();
        assert_eq!(summary.samples, 4);
        assert!((summary.accuracy - 1.0).abs() < 1e-6);
        assert!(summary.mean_spikes_per_sample > 0.0);
        assert_eq!(summary.accuracy_percent(), 100.0);
    }

    #[test]
    fn scale_weights_scales_all_weighted_layers() {
        let mut net = toy_network();
        net.scale_weights(2.0);
        let SnnLayer::Linear { weights, .. } = &net.layers()[0] else {
            panic!("expected linear layer");
        };
        assert_eq!(weights.get(&[0, 0]).unwrap(), 2.0);
    }

    #[test]
    fn simulate_batch_each_exposes_per_sample_logits() {
        let net = toy_network();
        let cfg = CodingConfig::new(64, 1.0);
        let coding = RateCoding::new();
        let inputs =
            Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.5, 0.3, 0.7], &[4, 2]).unwrap();

        // Reference: one simulate_with per row, logits copied out each time.
        let mut expected = Vec::new();
        let mut ws_ref = SimWorkspace::new();
        for sample in 0..4 {
            let mut rng = StdRng::seed_from_u64(100 + sample as u64);
            let outcome = net
                .simulate_with(
                    inputs.row_slice(sample).unwrap(),
                    &coding,
                    &cfg,
                    &IdentityTransform,
                    &mut rng,
                    &mut ws_ref,
                )
                .unwrap();
            expected.push((outcome, ws_ref.logits().to_vec()));
        }

        let mut seen = Vec::new();
        let mut ws = SimWorkspace::new();
        net.simulate_batch_each(
            &inputs,
            0..4,
            &coding,
            &cfg,
            &IdentityTransform,
            |sample| StdRng::seed_from_u64(100 + sample as u64),
            &mut ws,
            |sample, outcome, ws| {
                seen.push((sample, outcome, ws.logits().to_vec()));
            },
        )
        .unwrap();

        assert_eq!(seen.len(), 4);
        for (sample, (index, outcome, logits)) in seen.into_iter().enumerate() {
            assert_eq!(index, sample);
            assert_eq!(outcome, expected[sample].0);
            assert_eq!(logits, expected[sample].1, "sample {sample}");
        }
    }

    #[test]
    fn stage_tracing_tiles_the_simulation_without_perturbing_results() {
        let net = toy_network();
        let cfg = CodingConfig::new(64, 1.0);
        let coding = TtasCoding::new(3).unwrap();
        let input = [0.7f32, 0.3];

        let mut plain_ws = SimWorkspace::new();
        let mut rng = StdRng::seed_from_u64(42);
        let plain = net
            .simulate_with(
                &input,
                &coding,
                &cfg,
                &IdentityTransform,
                &mut rng,
                &mut plain_ws,
            )
            .unwrap();
        assert!(
            plain_ws.stage_events().is_empty(),
            "tracing is off by default"
        );

        let mut traced_ws = SimWorkspace::new();
        traced_ws.set_stage_tracing(true);
        let mut rng = StdRng::seed_from_u64(42);
        let traced = net
            .simulate_with(
                &input,
                &coding,
                &cfg,
                &IdentityTransform,
                &mut rng,
                &mut traced_ws,
            )
            .unwrap();

        // Bit-identical results with tracing on.
        assert_eq!(plain, traced);
        for (a, b) in plain_ws.logits().iter().zip(traced_ws.logits()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // 2 layers, identity noise: encode, decode, forward per layer.
        let events = traced_ws.stage_events();
        let stages: Vec<(SimStage, u32)> = events.iter().map(|e| (e.stage, e.layer)).collect();
        assert_eq!(
            stages,
            vec![
                (SimStage::Encode, 0),
                (SimStage::Decode, 0),
                (SimStage::Forward, 0),
                (SimStage::Encode, 1),
                (SimStage::Decode, 1),
                (SimStage::Forward, 1),
            ]
        );
        // Events tile: each event starts exactly where the previous ended.
        for pair in events.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        for e in events {
            assert!(e.end >= e.start);
            if e.stage == SimStage::Forward {
                assert_eq!(e.density, traced_ws.density_per_layer()[e.layer as usize]);
            } else {
                assert!(!e.sparse);
                assert_eq!(e.density, 0.0);
            }
        }

        // Turning tracing back off clears the event stream on the next run.
        traced_ws.set_stage_tracing(false);
        let mut rng = StdRng::seed_from_u64(42);
        net.simulate_with(
            &input,
            &coding,
            &cfg,
            &IdentityTransform,
            &mut rng,
            &mut traced_ws,
        )
        .unwrap();
        assert!(traced_ws.stage_events().is_empty());
    }

    #[test]
    fn identity_transform_is_a_noop() {
        let mut raster = SpikeRaster::new(2, 10);
        raster.set_train(0, vec![1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(6);
        let out = IdentityTransform.apply(&raster, &mut rng);
        assert_eq!(out, raster);
        assert_eq!(IdentityTransform.describe(), "clean");
    }
}
