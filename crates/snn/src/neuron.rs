//! Spiking neuron models.
//!
//! Two neuron models are provided:
//!
//! * [`IfNeuron`] — the standard integrate-and-fire neuron of Eq. 1–3 of the
//!   paper, with either reset-by-subtraction (used by rate-style conversion)
//!   or reset-to-zero.
//! * [`IfbNeuron`] — the *simplified integrate-and-fire-or-burst* neuron the
//!   paper introduces for TTAS coding (Eq. 4): it behaves like an IF neuron
//!   until its first spike at `t₁`, then emits a phasic burst of spikes for
//!   the next `t_a` steps, and stays silent afterwards.  The paper notes it
//!   can be realised with a counter and gate operations, which is exactly
//!   what this implementation does.

use serde::{Deserialize, Serialize};

/// How the membrane potential is reset after a spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ResetKind {
    /// Subtract the threshold from the membrane (residual kept; preferred in
    /// conversion because it avoids systematic under-counting).
    #[default]
    Subtract,
    /// Reset the membrane to zero.
    ToZero,
}

/// Integrate-and-fire neuron (Eq. 1–3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfNeuron {
    membrane: f32,
    threshold: f32,
    reset: ResetKind,
    spike_count: u32,
}

impl IfNeuron {
    /// Creates an IF neuron with the given firing threshold and reset rule.
    pub fn new(threshold: f32, reset: ResetKind) -> Self {
        IfNeuron {
            membrane: 0.0,
            threshold,
            reset,
            spike_count: 0,
        }
    }

    /// Current membrane potential.
    pub fn membrane(&self) -> f32 {
        self.membrane
    }

    /// Number of spikes emitted since construction or the last [`Self::reset_state`].
    pub fn spike_count(&self) -> u32 {
        self.spike_count
    }

    /// Integrates one time step of input current and returns `true` if the
    /// neuron fires.
    pub fn step(&mut self, input_current: f32) -> bool {
        self.membrane += input_current;
        if self.membrane >= self.threshold {
            match self.reset {
                ResetKind::Subtract => self.membrane -= self.threshold,
                ResetKind::ToZero => self.membrane = 0.0,
            }
            self.spike_count += 1;
            true
        } else {
            false
        }
    }

    /// Resets membrane potential and spike counter.
    pub fn reset_state(&mut self) {
        self.membrane = 0.0;
        self.spike_count = 0;
    }
}

/// Simplified integrate-and-fire-or-burst neuron (Eq. 4).
///
/// The reset function is
///
/// ```text
/// η(t) = 0        if t < t₁
///      = θ(t)     if t₁ ≤ t < t₁ + t_a      (phasic burst)
///      = −∞       otherwise                  (silent)
/// ```
///
/// i.e. after the first threshold crossing the neuron fires on every step
/// for `t_a` steps and then never again within the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfbNeuron {
    membrane: f32,
    threshold: f32,
    burst_duration: u32,
    first_spike: Option<u32>,
    current_step: u32,
    spike_count: u32,
}

impl IfbNeuron {
    /// Creates an IFB neuron with threshold `threshold` and a phasic burst of
    /// `burst_duration` spikes (the paper's `t_a`).
    pub fn new(threshold: f32, burst_duration: u32) -> Self {
        IfbNeuron {
            membrane: 0.0,
            threshold,
            burst_duration: burst_duration.max(1),
            first_spike: None,
            current_step: 0,
            spike_count: 0,
        }
    }

    /// Time of the first spike, if the neuron has fired.
    pub fn first_spike(&self) -> Option<u32> {
        self.first_spike
    }

    /// Number of spikes emitted so far.
    pub fn spike_count(&self) -> u32 {
        self.spike_count
    }

    /// Integrates one time step of input current and returns `true` if the
    /// neuron fires at this step.
    pub fn step(&mut self, input_current: f32) -> bool {
        let t = self.current_step;
        self.current_step += 1;
        match self.first_spike {
            None => {
                self.membrane += input_current;
                if self.membrane >= self.threshold {
                    self.first_spike = Some(t);
                    self.spike_count += 1;
                    // η = θ(t): membrane pinned at threshold during the burst.
                    self.membrane = self.threshold;
                    true
                } else {
                    false
                }
            }
            Some(t1) if t < t1 + self.burst_duration => {
                self.spike_count += 1;
                true
            }
            Some(_) => {
                // η = −∞: the neuron can never reach threshold again.
                false
            }
        }
    }

    /// Resets all state for a new time window.
    pub fn reset_state(&mut self) {
        self.membrane = 0.0;
        self.first_spike = None;
        self.current_step = 0;
        self.spike_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_neuron_fires_at_threshold() {
        let mut n = IfNeuron::new(1.0, ResetKind::Subtract);
        assert!(!n.step(0.6));
        assert!(n.step(0.6)); // membrane 1.2 >= 1.0
        assert!((n.membrane() - 0.2).abs() < 1e-6); // residual kept
        assert_eq!(n.spike_count(), 1);
    }

    #[test]
    fn if_neuron_reset_to_zero_discards_residual() {
        let mut n = IfNeuron::new(1.0, ResetKind::ToZero);
        n.step(0.6);
        n.step(0.6);
        assert_eq!(n.membrane(), 0.0);
    }

    #[test]
    fn if_neuron_rate_proportional_to_input() {
        // With constant input current c and reset-by-subtraction, the firing
        // rate over T steps approaches c/θ.
        let mut n = IfNeuron::new(1.0, ResetKind::Subtract);
        let mut spikes = 0;
        for _ in 0..1000 {
            if n.step(0.3) {
                spikes += 1;
            }
        }
        assert!((spikes as f32 / 1000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn if_neuron_reset_state_clears() {
        let mut n = IfNeuron::new(0.5, ResetKind::Subtract);
        n.step(1.0);
        n.reset_state();
        assert_eq!(n.membrane(), 0.0);
        assert_eq!(n.spike_count(), 0);
    }

    #[test]
    fn ifb_neuron_bursts_for_duration_then_goes_silent() {
        let mut n = IfbNeuron::new(1.0, 3);
        let mut spikes = Vec::new();
        // Constant drive of 0.5: first crossing at step 1.
        for t in 0..10u32 {
            if n.step(0.5) {
                spikes.push(t);
            }
        }
        assert_eq!(spikes, vec![1, 2, 3]); // burst of t_a = 3 spikes
        assert_eq!(n.first_spike(), Some(1));
        assert_eq!(n.spike_count(), 3);
    }

    #[test]
    fn ifb_neuron_never_fires_without_enough_drive() {
        let mut n = IfbNeuron::new(1.0, 5);
        for _ in 0..20 {
            assert!(!n.step(0.01));
        }
        assert_eq!(n.first_spike(), None);
    }

    #[test]
    fn ifb_burst_duration_of_one_reduces_to_single_spike() {
        let mut n = IfbNeuron::new(1.0, 1);
        let spikes: Vec<bool> = (0..6).map(|_| n.step(0.6)).collect();
        assert_eq!(spikes.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    fn ifb_reset_state_allows_new_window() {
        let mut n = IfbNeuron::new(1.0, 2);
        for _ in 0..5 {
            n.step(1.0);
        }
        assert_eq!(n.spike_count(), 2);
        n.reset_state();
        assert_eq!(n.spike_count(), 0);
        assert!(n.step(1.0));
    }

    #[test]
    fn larger_input_fires_earlier() {
        let mut fast = IfbNeuron::new(1.0, 1);
        let mut slow = IfbNeuron::new(1.0, 1);
        let mut t_fast = None;
        let mut t_slow = None;
        for t in 0..100u32 {
            if fast.step(0.5) && t_fast.is_none() {
                t_fast = Some(t);
            }
            if slow.step(0.05) && t_slow.is_none() {
                t_slow = Some(t);
            }
        }
        assert!(t_fast.unwrap() < t_slow.unwrap());
    }
}
