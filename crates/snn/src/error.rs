use std::error::Error;
use std::fmt;

use nrsnn_tensor::TensorError;

/// Error type for SNN construction, conversion and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A configuration value was invalid (zero time steps, threshold ≤ 0, …).
    InvalidConfig(String),
    /// The network to convert had an unsupported or inconsistent structure.
    Conversion(String),
    /// Simulation input did not match the network input width.
    InputMismatch {
        /// Width the network expects.
        expected: usize,
        /// Width that was provided.
        actual: usize,
    },
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            SnnError::InvalidConfig(msg) => write!(f, "invalid SNN configuration: {msg}"),
            SnnError::Conversion(msg) => write!(f, "conversion error: {msg}"),
            SnnError::InputMismatch { expected, actual } => {
                write!(f, "network expects input width {expected}, got {actual}")
            }
        }
    }
}

impl Error for SnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SnnError {
    fn from(e: TensorError) -> Self {
        SnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SnnError::InputMismatch {
            expected: 10,
            actual: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }
}
