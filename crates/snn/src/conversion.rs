//! DNN-to-SNN conversion with data-based threshold balancing.
//!
//! The paper (like its references [1], [3], [5], [21], [22]) obtains deep
//! SNNs by converting pre-trained DNNs: the ReLU activations of the source
//! network map onto firing rates / spike times, and each layer's weights are
//! rescaled so the normalised activations fall into the representable range
//! of the coding.  We use the standard data-based scheme: the activation
//! scale of a layer is a high percentile (default 99.9 %) of its post-ReLU
//! activations over a probe set, and the weights are renormalised by the
//! ratio of consecutive layer scales.

use nrsnn_dnn::{LayerDescriptor, Sequential};
use nrsnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

use crate::{Result, SnnError, SnnLayer, SnnNetwork};

/// Computes per-layer activation scales from a probe set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdBalancer {
    percentile: f32,
}

impl ThresholdBalancer {
    /// Creates a balancer using the given activation percentile (e.g. 99.9).
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] if the percentile is outside
    /// `(0, 100]`.
    pub fn new(percentile: f32) -> Result<Self> {
        if !(percentile > 0.0 && percentile <= 100.0) {
            return Err(SnnError::InvalidConfig(format!(
                "percentile must be in (0, 100], got {percentile}"
            )));
        }
        Ok(ThresholdBalancer { percentile })
    }

    /// The default 99.9-percentile balancer used throughout the paper's
    /// conversion pipeline.
    pub fn default_percentile() -> Self {
        ThresholdBalancer { percentile: 99.9 }
    }

    /// The configured percentile.
    pub fn percentile(&self) -> f32 {
        self.percentile
    }

    /// Computes one activation scale per descriptor-bearing layer of `dnn`
    /// by running the probe inputs through the network.
    ///
    /// # Errors
    /// Propagates DNN forward-pass errors.
    pub fn scales(&self, dnn: &mut Sequential, probe: &Tensor) -> Result<Vec<f32>> {
        dnn.activation_percentiles(probe, self.percentile)
            .map_err(|e| SnnError::Conversion(format!("activation statistics failed: {e}")))
    }
}

/// Options of the DNN-to-SNN conversion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConversionConfig {
    /// Uniform weight-scaling factor `C` applied to every converted weight
    /// (the paper's WS compensation; `1.0` disables it).
    pub weight_scale: f32,
}

impl Default for ConversionConfig {
    fn default() -> Self {
        ConversionConfig { weight_scale: 1.0 }
    }
}

/// Converts trained-DNN layer descriptors into a spiking network.
///
/// `activation_scales` must contain one entry per descriptor (as produced by
/// [`ThresholdBalancer::scales`]); entries for parameter-free layers
/// (average pooling) are ignored.
///
/// # Errors
/// Returns [`SnnError::Conversion`] if the scale count does not match or a
/// scale is non-positive.
pub fn convert(
    descriptors: &[LayerDescriptor],
    activation_scales: &[f32],
    config: &ConversionConfig,
) -> Result<SnnNetwork> {
    if descriptors.is_empty() {
        return Err(SnnError::Conversion("no layers to convert".to_string()));
    }
    if descriptors.len() != activation_scales.len() {
        return Err(SnnError::Conversion(format!(
            "{} descriptors but {} activation scales",
            descriptors.len(),
            activation_scales.len()
        )));
    }
    let mut layers = Vec::with_capacity(descriptors.len());
    // Input pixels are already normalised to [0, 1].
    let mut prev_scale = 1.0f32;
    for (descriptor, &scale) in descriptors.iter().zip(activation_scales) {
        match descriptor {
            LayerDescriptor::Linear { weights, bias } => {
                if scale <= 0.0 {
                    return Err(SnnError::Conversion(format!(
                        "non-positive activation scale {scale}"
                    )));
                }
                let factor = prev_scale / scale * config.weight_scale;
                layers.push(SnnLayer::Linear {
                    weights: weights.scale(factor),
                    bias: bias.scale(1.0 / scale),
                });
                prev_scale = scale;
            }
            LayerDescriptor::Conv {
                weights,
                bias,
                geometry,
            } => {
                if scale <= 0.0 {
                    return Err(SnnError::Conversion(format!(
                        "non-positive activation scale {scale}"
                    )));
                }
                let factor = prev_scale / scale * config.weight_scale;
                layers.push(SnnLayer::Conv {
                    weights: weights.scale(factor),
                    bias: bias.scale(1.0 / scale),
                    geometry: *geometry,
                });
                prev_scale = scale;
            }
            LayerDescriptor::AvgPool { geometry } => {
                layers.push(SnnLayer::AvgPool {
                    geometry: *geometry,
                });
                // Pooling does not change the activation scale.
            }
        }
    }
    SnnNetwork::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrsnn_dnn::{Dense, Mode, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dnn() -> Sequential {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new();
        net.push(Dense::new(&mut rng, 4, 6).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(&mut rng, 6, 3).unwrap());
        net
    }

    #[test]
    fn balancer_validates_percentile() {
        assert!(ThresholdBalancer::new(0.0).is_err());
        assert!(ThresholdBalancer::new(150.0).is_err());
        assert!(ThresholdBalancer::new(99.9).is_ok());
        assert_eq!(ThresholdBalancer::default_percentile().percentile(), 99.9);
    }

    #[test]
    fn scales_have_one_entry_per_descriptor() {
        let mut dnn = toy_dnn();
        let probe = Tensor::ones(&[8, 4]);
        let balancer = ThresholdBalancer::default_percentile();
        let scales = balancer.scales(&mut dnn, &probe).unwrap();
        assert_eq!(scales.len(), dnn.descriptors().len());
        assert!(scales.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn convert_produces_matching_layer_count() {
        let mut dnn = toy_dnn();
        let probe = Tensor::ones(&[8, 4]);
        let scales = ThresholdBalancer::default_percentile()
            .scales(&mut dnn, &probe)
            .unwrap();
        let snn = convert(&dnn.descriptors(), &scales, &ConversionConfig::default()).unwrap();
        assert_eq!(snn.num_layers(), 2);
        assert_eq!(snn.input_width(), 4);
        assert_eq!(snn.output_width(), 3);
    }

    #[test]
    fn convert_rejects_mismatched_scales() {
        let dnn_descriptors = toy_dnn().descriptors();
        assert!(convert(&dnn_descriptors, &[1.0], &ConversionConfig::default()).is_err());
        assert!(convert(&dnn_descriptors, &[1.0, 0.0], &ConversionConfig::default()).is_err());
        assert!(convert(&[], &[], &ConversionConfig::default()).is_err());
    }

    #[test]
    fn normalised_activations_are_bounded_by_one() {
        // After conversion, analog propagation of the probe set through the
        // normalised weights should produce activations mostly within [0, 1].
        let mut dnn = toy_dnn();
        let mut rng = StdRng::seed_from_u64(4);
        let probe = nrsnn_tensor::uniform(&mut rng, &[16, 4], 0.0, 1.0);
        let scales = ThresholdBalancer::new(100.0)
            .unwrap()
            .scales(&mut dnn, &probe)
            .unwrap();
        let snn = convert(&dnn.descriptors(), &scales, &ConversionConfig::default()).unwrap();
        for i in 0..16 {
            let row = probe.row(i).unwrap();
            let hidden = snn.analog_forward_layer(0, row.as_slice()).unwrap();
            assert!(
                hidden.iter().all(|&v| v <= 1.0 + 1e-3),
                "activation above normalised ceiling: {hidden:?}"
            );
        }
    }

    #[test]
    fn weight_scale_multiplies_weights() {
        let mut dnn = toy_dnn();
        let probe = Tensor::ones(&[4, 4]);
        let scales = ThresholdBalancer::default_percentile()
            .scales(&mut dnn, &probe)
            .unwrap();
        let plain = convert(&dnn.descriptors(), &scales, &ConversionConfig::default()).unwrap();
        let scaled = convert(
            &dnn.descriptors(),
            &scales,
            &ConversionConfig { weight_scale: 2.0 },
        )
        .unwrap();
        let (SnnLayer::Linear { weights: w0, .. }, SnnLayer::Linear { weights: w1, .. }) =
            (&plain.layers()[0], &scaled.layers()[0])
        else {
            panic!("expected linear layers");
        };
        for (a, b) in w0.as_slice().iter().zip(w1.as_slice()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
    }

    #[test]
    fn conversion_preserves_dnn_predictions_in_analog_mode() {
        // With 100th-percentile normalisation and no clipping the converted
        // network is an exact rescaling of the DNN, so analog propagation
        // must produce the same argmax.
        let mut dnn = toy_dnn();
        let mut rng = StdRng::seed_from_u64(12);
        let probe = nrsnn_tensor::uniform(&mut rng, &[32, 4], 0.0, 1.0);
        let scales = ThresholdBalancer::new(100.0)
            .unwrap()
            .scales(&mut dnn, &probe)
            .unwrap();
        let snn = convert(&dnn.descriptors(), &scales, &ConversionConfig::default()).unwrap();
        for i in 0..8 {
            let row = probe.row(i).unwrap();
            let dnn_logits = dnn
                .forward(&row.reshape(&[1, 4]).unwrap(), Mode::Infer)
                .unwrap();
            let snn_logits = snn.analog_forward(row.as_slice()).unwrap();
            let dnn_pred = dnn_logits.argmax();
            let snn_pred = snn_logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(dnn_pred, snn_pred, "sample {i}");
        }
    }
}
