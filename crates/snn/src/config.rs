//! Shared coding/simulation configuration.

use serde::{Deserialize, Serialize};

use crate::{Result, SnnError};

/// Parameters shared by all neural codings.
///
/// * `time_steps` — length `T` of the per-layer time window;
/// * `threshold` — the empirical encoding ceiling θ (the paper's per-coding
///   threshold from its §V threshold search): activations are clamped to
///   `[0, θ]` before encoding and the coding's full resolution is spent on
///   that range.  Smaller θ trades clipping of rare large activations for
///   finer resolution, exactly the trade-off of empirical threshold
///   balancing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodingConfig {
    /// Number of simulation time steps per layer window.
    pub time_steps: u32,
    /// Encoding ceiling θ (must be positive).
    pub threshold: f32,
    /// Time constant of the exponentially decaying PSC kernel used by TTFS
    /// and TTAS, expressed as a fraction of `time_steps`.  The default of
    /// `0.05` keeps the kernel steep (as in T2FSNN's per-layer phases): a
    /// one-step shift changes the carried value by ≈ `exp(1/τ)` ≈ 17 % for a
    /// 128-step window, which is what makes TTFS fragile to jitter while the
    /// dynamic range over the window stays far larger than needed.
    pub ttfs_tau_fraction: f32,
}

impl CodingConfig {
    /// Creates a configuration with the default TTFS kernel time constant.
    pub fn new(time_steps: u32, threshold: f32) -> Self {
        CodingConfig {
            time_steps,
            threshold,
            ttfs_tau_fraction: 0.05,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] for non-positive values.
    pub fn validate(&self) -> Result<()> {
        if self.time_steps == 0 {
            return Err(SnnError::InvalidConfig(
                "time_steps must be non-zero".to_string(),
            ));
        }
        // `partial_cmp` keeps NaN on the rejection path.
        if self.threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SnnError::InvalidConfig(format!(
                "threshold must be positive, got {}",
                self.threshold
            )));
        }
        if self.ttfs_tau_fraction.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(SnnError::InvalidConfig(format!(
                "ttfs_tau_fraction must be positive, got {}",
                self.ttfs_tau_fraction
            )));
        }
        Ok(())
    }

    /// The TTFS/TTAS kernel time constant in time steps.
    pub fn ttfs_tau(&self) -> f32 {
        (self.time_steps as f32 * self.ttfs_tau_fraction).max(1.0)
    }

    /// Clamps an activation to the representable range `[0, θ]`.
    pub fn clamp(&self, activation: f32) -> f32 {
        activation.clamp(0.0, self.threshold)
    }
}

impl Default for CodingConfig {
    fn default() -> Self {
        CodingConfig::new(128, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(CodingConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CodingConfig::new(0, 1.0).validate().is_err());
        assert!(CodingConfig::new(10, 0.0).validate().is_err());
        assert!(CodingConfig::new(10, -1.0).validate().is_err());
        let mut c = CodingConfig::new(10, 1.0);
        c.ttfs_tau_fraction = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn clamp_limits_to_threshold() {
        let cfg = CodingConfig::new(100, 0.4);
        assert_eq!(cfg.clamp(0.2), 0.2);
        assert_eq!(cfg.clamp(0.9), 0.4);
        assert_eq!(cfg.clamp(-0.5), 0.0);
    }

    #[test]
    fn tau_scales_with_window() {
        let short = CodingConfig::new(50, 1.0);
        let long = CodingConfig::new(500, 1.0);
        assert!(long.ttfs_tau() > short.ttfs_tau());
        assert!(short.ttfs_tau() >= 1.0);
    }
}
