//! Burst coding.

use nrsnn_tensor::simd::{active_backend, encode_quant_with, quantize_value};

use crate::coding::CodingScratch;
use crate::{CodingConfig, CodingKind, NeuralCoding, Result, SnnError, SpikeRaster};

/// Largest `max_spikes` the lane-blocked encode handles exactly (see the
/// same constant in the rate coding); larger bursts — far beyond any
/// realistic configuration — take the per-value path.
const MAX_LANE_SPIKES: u32 = 1 << 24;

/// Burst coding after Park et al. (DAC 2019): an activation is transmitted
/// as a short burst of consecutive spikes, and the decoder uses the
/// inter-spike interval (ISI) to recognise which spikes belong to the burst.
///
/// * Encoding: `a ∈ [0, θ]` becomes `n = round(a/θ · N_max)` spikes at
///   consecutive time steps starting at `t = 0`.
/// * Decoding: spikes whose ISI to the previously accepted spike is at most
///   `isi_tolerance` contribute a full quantum `θ/N_max`; spikes that arrive
///   after a larger gap are treated as stragglers outside the burst and only
///   contribute half a quantum.
///
/// Deletion therefore removes quanta gradually (like rate coding), while
/// jitter corrupts the ISI structure and devalues displaced spikes — burst
/// coding sits between rate and phase in jitter robustness, matching Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstCoding {
    max_spikes: u32,
    isi_tolerance: u32,
}

impl BurstCoding {
    /// Creates a burst coding with the default maximum burst length of 8
    /// spikes and an ISI tolerance of 2 steps.
    pub fn new() -> Self {
        BurstCoding {
            max_spikes: 8,
            isi_tolerance: 2,
        }
    }

    /// Creates a burst coding with a custom maximum burst length.
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] for a zero burst length: a burst
    /// of at most 0 spikes cannot carry a value, and silently clamping it
    /// would change the quantum `θ/N_max` behind the caller's back.
    pub fn with_max_spikes(max_spikes: u32) -> Result<Self> {
        if max_spikes == 0 {
            return Err(SnnError::InvalidConfig(
                "burst coding max_spikes must be at least 1".to_string(),
            ));
        }
        Ok(BurstCoding {
            max_spikes,
            isi_tolerance: 2,
        })
    }

    /// The maximum number of spikes per burst.
    pub fn max_spikes(&self) -> u32 {
        self.max_spikes
    }

    /// The ISI tolerance used by the decoder.
    pub fn isi_tolerance(&self) -> u32 {
        self.isi_tolerance
    }
}

impl Default for BurstCoding {
    fn default() -> Self {
        BurstCoding::new()
    }
}

impl NeuralCoding for BurstCoding {
    fn name(&self) -> String {
        "burst".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Burst
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        let n = quantize_value(activation, cfg.threshold, self.max_spikes as f32) as u32;
        out.extend(0..n.min(self.max_spikes).min(cfg.time_steps));
    }

    fn encode_raster_into(
        &self,
        values: &[f32],
        cfg: &CodingConfig,
        raster: &mut SpikeRaster,
        scratch: &mut CodingScratch,
    ) {
        if self.max_spikes > MAX_LANE_SPIKES {
            raster.fill_trains(values.len(), cfg.time_steps, |i, train| {
                self.encode_into(values[i], cfg, train);
            });
            return;
        }
        scratch.lanes.clear();
        scratch.lanes.resize(values.len(), 0.0);
        encode_quant_with(
            active_backend(),
            values,
            cfg.threshold,
            self.max_spikes as f32,
            &mut scratch.lanes,
        );
        let counts = &scratch.lanes;
        let cap = self.max_spikes.min(cfg.time_steps);
        raster.fill_trains_trusted(values.len(), cfg.time_steps, |i, train| {
            train.extend(0..(counts[i] as u32).min(cap));
        });
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        if train.is_empty() {
            return 0.0;
        }
        let quantum = cfg.threshold / self.max_spikes as f32;
        let mut sum = 0.0f32;
        let mut prev: Option<u32> = None;
        for &t in train {
            let in_burst = match prev {
                // The first spike anchors the burst; it is accepted at full
                // weight if it arrives within the tolerance of the window
                // start (bursts are emitted from t = 0 in this scheme).
                None => t <= self.isi_tolerance,
                Some(p) => t.saturating_sub(p) <= self.isi_tolerance,
            };
            sum += if in_burst { quantum } else { quantum * 0.25 };
            prev = Some(t);
        }
        sum.min(cfg.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_quantisation() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = BurstCoding::new();
        for v in [0.125, 0.25, 0.5, 0.75, 1.0] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            assert!(
                (decoded - v).abs() <= 0.51 / 8.0 + 1e-5,
                "v {v} decoded {decoded}"
            );
        }
    }

    #[test]
    fn burst_is_consecutive_from_zero() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = BurstCoding::new();
        assert_eq!(coding.encode(0.5, &cfg), vec![0, 1, 2, 3]);
        assert_eq!(coding.encode(1.0, &cfg).len(), 8);
    }

    #[test]
    fn deletion_is_graded() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = BurstCoding::new();
        let spikes = coding.encode(1.0, &cfg);
        // Drop every other spike: gaps of 2 are still within tolerance, so
        // the value halves (graded loss, like rate coding).
        let kept: Vec<u32> = spikes.iter().step_by(2).copied().collect();
        let decoded = coding.decode(&kept, &cfg);
        assert!((decoded - 0.5).abs() < 0.01, "decoded {decoded}");
    }

    #[test]
    fn jitter_devalues_displaced_spikes() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = BurstCoding::new();
        let spikes = coding.encode(1.0, &cfg);
        let clean = coding.decode(&spikes, &cfg);
        // Push the second half of the burst far away: those spikes decode at
        // half weight.
        let jittered: Vec<u32> = spikes
            .iter()
            .map(|&t| if t >= 4 { t + 10 } else { t })
            .collect();
        let noisy = coding.decode(&jittered, &cfg);
        assert!(noisy < clean);
        assert!(noisy >= clean * 0.5);
    }

    #[test]
    fn decode_saturates_at_threshold() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = BurstCoding::new();
        // More spikes than the burst length cannot exceed θ.
        let train: Vec<u32> = (0..20).collect();
        assert!(coding.decode(&train, &cfg) <= 1.0 + 1e-6);
    }

    #[test]
    fn custom_max_spikes() {
        let coding = BurstCoding::with_max_spikes(4).unwrap();
        let cfg = CodingConfig::new(64, 1.0);
        assert_eq!(coding.encode(1.0, &cfg).len(), 4);
        assert_eq!(coding.max_spikes(), 4);
    }

    #[test]
    fn zero_max_spikes_is_a_typed_error_not_a_silent_clamp() {
        assert!(matches!(
            BurstCoding::with_max_spikes(0),
            Err(SnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn burst_never_exceeds_window() {
        let coding = BurstCoding::new();
        let cfg = CodingConfig::new(4, 1.0);
        let spikes = coding.encode(1.0, &cfg);
        assert!(spikes.len() <= 4);
        assert!(spikes.iter().all(|&t| t < 4));
    }
}
