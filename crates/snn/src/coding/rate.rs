//! Rate coding.

use crate::{CodingConfig, CodingKind, NeuralCoding};

/// Rate coding: an activation `a ∈ [0, θ]` is represented by
/// `n = round(a/θ · T)` spikes spread evenly over the window, and decoded as
/// `n·θ/T`.
///
/// The PSC kernel is constant, so the decoded value depends only on *how
/// many* spikes arrive, never on *when* — which is why rate coding is
/// insensitive to jitter but pays for it with the largest spike counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateCoding;

impl RateCoding {
    /// Creates a rate coding.
    pub fn new() -> Self {
        RateCoding
    }
}

impl NeuralCoding for RateCoding {
    fn name(&self) -> String {
        "rate".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Rate
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        let t = cfg.time_steps;
        let v = cfg.clamp(activation);
        let n = ((v / cfg.threshold) * t as f32).round() as u32;
        let n = n.min(t);
        if n == 0 {
            return;
        }
        // Spread the n spikes evenly over the window.
        out.extend((0..n).map(|k| (k as u64 * t as u64 / n as u64) as u32));
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        train.len() as f32 * cfg.threshold / cfg.time_steps as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_values() {
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        for v in [0.0, 0.1, 0.25, 0.5, 0.73, 1.0] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            assert!((decoded - v).abs() <= 0.01, "v {v} decoded {decoded}");
        }
    }

    #[test]
    fn values_above_threshold_are_clipped() {
        let cfg = CodingConfig::new(100, 0.4);
        let coding = RateCoding::new();
        let decoded = coding.decode(&coding.encode(0.9, &cfg), &cfg);
        assert!((decoded - 0.4).abs() < 1e-5);
    }

    #[test]
    fn spike_count_is_proportional_to_value() {
        let cfg = CodingConfig::new(200, 1.0);
        let coding = RateCoding::new();
        assert_eq!(coding.encode(0.5, &cfg).len(), 100);
        assert_eq!(coding.encode(1.0, &cfg).len(), 200);
        assert_eq!(coding.encode(0.0, &cfg).len(), 0);
    }

    #[test]
    fn spikes_are_within_window_and_unique() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.8, &cfg);
        assert!(spikes.iter().all(|&t| t < 64));
        let mut dedup = spikes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), spikes.len());
    }

    #[test]
    fn decode_ignores_spike_timing() {
        // Shifting all spikes must not change the decoded value: this is the
        // mechanism behind rate coding's jitter robustness (Fig. 3).
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.4, &cfg);
        let shifted: Vec<u32> = spikes.iter().map(|&t| (t + 7).min(99)).collect();
        assert_eq!(coding.decode(&spikes, &cfg), coding.decode(&shifted, &cfg));
    }

    #[test]
    fn deleting_half_the_spikes_halves_the_value() {
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.8, &cfg);
        let kept: Vec<u32> = spikes.iter().step_by(2).copied().collect();
        let decoded = coding.decode(&kept, &cfg);
        assert!((decoded - 0.4).abs() < 0.02);
    }

    #[test]
    fn negative_activation_is_silent() {
        let cfg = CodingConfig::new(100, 1.0);
        assert!(RateCoding::new().encode(-0.3, &cfg).is_empty());
    }
}
