//! Rate coding.

use nrsnn_tensor::simd::{active_backend, encode_quant_with, quantize_value, scale_ratio_with};

use crate::coding::CodingScratch;
use crate::{CodingConfig, CodingKind, NeuralCoding, SpikeRaster};

/// Largest `time_steps` the lane-blocked encode handles: the truncating
/// lane conversion is exact only while every intermediate stays in the
/// f32-exact integer range `[0, 2^24]`.  Windows beyond that (far past
/// anything the paper sweeps) take the per-value path.
const MAX_LANE_STEPS: u32 = 1 << 24;

/// Largest window for which the block encode precomputes all `T+1`
/// canonical trains (one per possible spike count) and materialises each
/// neuron's train as a single `extend_from_slice`.  The table holds
/// `T·(T+1)/2` spike times — ~2 MiB of `u32` at the cap, L1-resident at
/// the paper's windows — and amortises over every row encoded with the
/// same window.  Wider windows fall back to direct Bresenham emission.
const RATE_TABLE_MAX_STEPS: u32 = 1024;

/// Rate coding: an activation `a ∈ [0, θ]` is represented by
/// `n = round(a/θ · T)` spikes spread evenly over the window, and decoded as
/// `n·θ/T`.
///
/// The PSC kernel is constant, so the decoded value depends only on *how
/// many* spikes arrive, never on *when* — which is why rate coding is
/// insensitive to jitter but pays for it with the largest spike counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateCoding;

impl RateCoding {
    /// Creates a rate coding.
    pub fn new() -> Self {
        RateCoding
    }
}

/// Emits `n` spikes at times `floor(k·t/n)` for `k = 0..n` — the canonical
/// evenly-spread rate train — without the per-spike 64-bit multiply/divide:
/// `floor((k+1)·t/n) − floor(k·t/n)` is `⌊t/n⌋` plus one carry whenever the
/// running remainder of `k·(t mod n)` wraps past `n` (Bresenham), so the
/// loop is two adds and a compare per spike.  The carry is applied
/// branchlessly (the carry pattern has an irregular period, so a branch
/// here mispredicts constantly) and the train is written through the
/// vector's spare capacity — no per-spike capacity/length bookkeeping and
/// no zero-fill pass (train materialisation is the scalar tail of the
/// lane-blocked encode, so this loop is the hot path).  Times are strictly
/// increasing (`n ≤ t` implies a step of at least 1) and below `t`.
fn emit_evenly(n: u32, t: u32, out: &mut Vec<u32>) {
    if n == 0 {
        return;
    }
    let step = t / n;
    let rem = u64::from(t % n);
    let den = u64::from(n);
    let mut time = 0u32;
    let mut err = 0u64;
    let start = out.len();
    out.reserve(n as usize);
    for slot in &mut out.spare_capacity_mut()[..n as usize] {
        slot.write(time);
        let carry = u32::from(err + rem >= den);
        err = (err + rem) - u64::from(carry) * den;
        time += step + carry;
    }
    // SAFETY: the `n` elements past `start` were just initialised above,
    // inside capacity guaranteed by the `reserve`.
    unsafe { out.set_len(start + n as usize) };
}

/// The per-value spike count: `min(round(min(max(a,0),θ)/θ · T), T)` via the
/// canonical [`quantize_value`] the lane kernel mirrors bit for bit.
fn spike_count(activation: f32, cfg: &CodingConfig) -> u32 {
    (quantize_value(activation, cfg.threshold, cfg.time_steps as f32) as u32).min(cfg.time_steps)
}

impl NeuralCoding for RateCoding {
    fn name(&self) -> String {
        "rate".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Rate
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        emit_evenly(spike_count(activation, cfg), cfg.time_steps, out);
    }

    fn encode_raster_into(
        &self,
        values: &[f32],
        cfg: &CodingConfig,
        raster: &mut SpikeRaster,
        scratch: &mut CodingScratch,
    ) {
        let t = cfg.time_steps;
        if t > MAX_LANE_STEPS {
            raster.fill_trains(values.len(), t, |i, train| {
                self.encode_into(values[i], cfg, train);
            });
            return;
        }
        scratch.lanes.clear();
        scratch.lanes.resize(values.len(), 0.0);
        encode_quant_with(
            active_backend(),
            values,
            cfg.threshold,
            t as f32,
            &mut scratch.lanes,
        );
        if t <= RATE_TABLE_MAX_STEPS {
            let key = Some((CodingKind::Rate, t, 0));
            if scratch.train_key != key {
                scratch.train_table.clear();
                scratch.train_offsets.clear();
                scratch.train_offsets.push(0);
                for n in 0..=t {
                    emit_evenly(n, t, &mut scratch.train_table);
                    scratch.train_offsets.push(scratch.train_table.len() as u32);
                }
                scratch.train_key = key;
            }
            let counts = &scratch.lanes;
            let (table, offsets) = (&scratch.train_table, &scratch.train_offsets);
            raster.fill_trains_trusted(values.len(), t, |i, train| {
                let n = (counts[i] as u32).min(t) as usize;
                train.extend_from_slice(&table[offsets[n] as usize..offsets[n + 1] as usize]);
            });
            return;
        }
        let counts = &scratch.lanes;
        raster.fill_trains_trusted(values.len(), t, |i, train| {
            emit_evenly((counts[i] as u32).min(t), t, train);
        });
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        train.len() as f32 * cfg.threshold / cfg.time_steps as f32
    }

    fn decode_into(&self, raster: &SpikeRaster, cfg: &CodingConfig, out: &mut Vec<f32>) {
        out.clear();
        out.extend(raster.iter().map(|(_, train)| train.len() as f32));
        scale_ratio_with(active_backend(), out, cfg.threshold, cfg.time_steps as f32);
    }

    fn decode_active_into(
        &self,
        raster: &SpikeRaster,
        cfg: &CodingConfig,
        out: &mut Vec<f32>,
        active: &mut Vec<u32>,
        _scratch: &mut Vec<f32>,
    ) {
        self.decode_into(raster, cfg, out);
        active.clear();
        active.extend(
            out.iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(n, _)| n as u32),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_values() {
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        for v in [0.0, 0.1, 0.25, 0.5, 0.73, 1.0] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            assert!((decoded - v).abs() <= 0.01, "v {v} decoded {decoded}");
        }
    }

    #[test]
    fn values_above_threshold_are_clipped() {
        let cfg = CodingConfig::new(100, 0.4);
        let coding = RateCoding::new();
        let decoded = coding.decode(&coding.encode(0.9, &cfg), &cfg);
        assert!((decoded - 0.4).abs() < 1e-5);
    }

    #[test]
    fn spike_count_is_proportional_to_value() {
        let cfg = CodingConfig::new(200, 1.0);
        let coding = RateCoding::new();
        assert_eq!(coding.encode(0.5, &cfg).len(), 100);
        assert_eq!(coding.encode(1.0, &cfg).len(), 200);
        assert_eq!(coding.encode(0.0, &cfg).len(), 0);
    }

    #[test]
    fn spikes_are_within_window_and_unique() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.8, &cfg);
        assert!(spikes.iter().all(|&t| t < 64));
        let mut dedup = spikes.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), spikes.len());
    }

    #[test]
    fn evenly_spread_emission_matches_direct_formula() {
        for (n, t) in [
            (1u32, 1u32),
            (3, 7),
            (7, 7),
            (13, 64),
            (100, 200),
            (200, 200),
        ] {
            let mut fast = Vec::new();
            emit_evenly(n, t, &mut fast);
            let direct: Vec<u32> = (0..n)
                .map(|k| (u64::from(k) * u64::from(t) / u64::from(n)) as u32)
                .collect();
            assert_eq!(fast, direct, "n={n} t={t}");
        }
    }

    #[test]
    fn decode_ignores_spike_timing() {
        // Shifting all spikes must not change the decoded value: this is the
        // mechanism behind rate coding's jitter robustness (Fig. 3).
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.4, &cfg);
        let shifted: Vec<u32> = spikes.iter().map(|&t| (t + 7).min(99)).collect();
        assert_eq!(coding.decode(&spikes, &cfg), coding.decode(&shifted, &cfg));
    }

    #[test]
    fn deleting_half_the_spikes_halves_the_value() {
        let cfg = CodingConfig::new(100, 1.0);
        let coding = RateCoding::new();
        let spikes = coding.encode(0.8, &cfg);
        let kept: Vec<u32> = spikes.iter().step_by(2).copied().collect();
        let decoded = coding.decode(&kept, &cfg);
        assert!((decoded - 0.4).abs() < 0.02);
    }

    #[test]
    fn negative_activation_is_silent() {
        let cfg = CodingConfig::new(100, 1.0);
        assert!(RateCoding::new().encode(-0.3, &cfg).is_empty());
    }
}
