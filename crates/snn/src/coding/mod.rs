//! Neural coding schemes.
//!
//! A neural coding defines how a non-negative activation value is
//! represented as a spike train and how a downstream synapse integrates that
//! train back into a post-synaptic-current (PSC) sum.  The paper studies
//! four existing codings — rate, phase, burst and time-to-first-spike — and
//! proposes time-to-average-spike (TTAS).
//!
//! | Coding | Spikes per value | Carrier of information | Deletion behaviour | Jitter behaviour |
//! |---|---|---|---|---|
//! | [`RateCoding`]  | up to `T`        | spike count              | graded `(1-p)·A` | unaffected |
//! | [`PhaseCoding`] | up to `T`        | spike phase (binary weight) | graded        | severe (weights change ×2 per step) |
//! | [`BurstCoding`] | up to `N_max`    | burst length / ISI       | graded           | moderate (ISI corrupted) |
//! | [`TtfsCoding`]  | 1                | first-spike time         | all-or-none      | severe (exp. kernel shift) |
//! | [`TtasCoding`]  | `t_a`            | average time of a phasic burst | near all-or-none, WS-friendly | averaged out |

mod burst;
mod phase;
mod rate;
mod ttas;
mod ttfs;

pub use burst::BurstCoding;
pub use phase::PhaseCoding;
pub use rate::RateCoding;
pub use ttas::TtasCoding;
pub use ttfs::TtfsCoding;

use serde::{Deserialize, Serialize};

use crate::{CodingConfig, SpikeRaster};

/// Reusable structure-of-arrays scratch for the lane-blocked encode paths.
///
/// The block encoders ([`NeuralCoding::encode_raster_into`]) split each
/// coding into a vectorisable head — one scalar quantity per neuron,
/// computed 8 lanes at a time — and a scalar tail that materialises the
/// variable-length spike trains from those quantities.  This scratch owns
/// the SoA buffers the head writes and the tail reads, so blocks touch
/// contiguous memory and the simulation workspace stays allocation-free in
/// steady state (the buffers grow to the widest layer seen and never
/// shrink).
#[derive(Debug, Clone, Default)]
pub struct CodingScratch {
    /// One f32 per neuron: quantised spike counts (rate/burst) or clamped
    /// activation ratios (TTFS/TTAS).
    pub(crate) lanes: Vec<f32>,
    /// One phase-coding bit pattern per neuron (bit `k` = phase `k` fires).
    pub(crate) bits: Vec<u64>,
    /// Per-phase weights `2^-(k+1)` for the active phase period.
    pub(crate) weights: Vec<f32>,
    /// Per-phase firing thresholds `weights[k] - 1e-6`.
    pub(crate) thresholds: Vec<f32>,
    /// Precomputed canonical trains, concatenated: for a fixed window the
    /// whole train is a function of the per-neuron scalar quantity alone
    /// (rate: one train per spike count `0..=T`; phase: one per bit
    /// pattern), so the scalar tail becomes a table lookup plus one
    /// `extend_from_slice` per neuron.
    pub(crate) train_table: Vec<u32>,
    /// `train_offsets[q]..train_offsets[q+1]` bounds quantity `q`'s train
    /// inside [`CodingScratch::train_table`].
    pub(crate) train_offsets: Vec<u32>,
    /// `(kind, time_steps, period)` the current table was built for; the
    /// table is rebuilt lazily whenever the coding or window changes.
    pub(crate) train_key: Option<(CodingKind, u32, u32)>,
}

impl CodingScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CodingScratch::default()
    }
}

/// A neural coding: the pair of an encoder (activation → spike train) and a
/// decoder (spike train → PSC sum ≈ activation).
///
/// Implementations must satisfy `decode(encode(a)) ≈ clamp(a)` up to the
/// coding's quantisation resolution — this round-trip property is checked by
/// property-based tests for every coding.
pub trait NeuralCoding: Send + Sync {
    /// Human-readable name used in reports ("rate", "ttas(5)", …).
    fn name(&self) -> String;

    /// The coding kind tag.
    fn kind(&self) -> CodingKind;

    /// Encodes a non-negative activation into a sorted spike train within a
    /// window of `cfg.time_steps` steps.  Values are clamped to
    /// `[0, cfg.threshold]`.
    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32>;

    /// Encodes into a caller-provided buffer (cleared first, capacity kept).
    ///
    /// Must produce exactly the spikes of [`NeuralCoding::encode`]; every
    /// coding in this crate overrides the default with an allocation-free
    /// implementation, which is what makes the batched simulation workspace
    /// (`SimWorkspace`) allocation-free in steady state.
    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.encode(activation, cfg));
    }

    /// Encodes a whole activation vector into `raster` (one train per
    /// value) through the coding's lane-blocked block path.
    ///
    /// Must fill `raster` with exactly the trains
    /// [`NeuralCoding::encode_into`] would produce per value — the block
    /// path computes the per-neuron scalar quantities (spike counts, bit
    /// patterns, clamped ratios) 8 lanes at a time into `scratch`, then
    /// materialises the variable-length trains in a canonical scalar tail.
    /// The default falls back to the per-value path, so custom codings
    /// outside this crate keep working unchanged.
    fn encode_raster_into(
        &self,
        values: &[f32],
        cfg: &CodingConfig,
        raster: &mut SpikeRaster,
        scratch: &mut CodingScratch,
    ) {
        let _ = scratch;
        raster.fill_trains(values.len(), cfg.time_steps, |i, train| {
            self.encode_into(values[i], cfg, train);
        });
    }

    /// Integrates a spike train through the coding's PSC kernel, recovering
    /// an activation estimate.
    ///
    /// **Contract:** an empty train must decode to exactly `+0.0` (bit
    /// pattern `0x0000_0000`) — a silent neuron transmits nothing.  Every
    /// coding in this crate satisfies this, and the sparsity-aware
    /// simulation engine relies on it to skip silent neurons without
    /// perturbing a single output bit.
    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32;

    /// Decodes every train of `raster` into `out` (cleared first, capacity
    /// kept): `out[n] = decode(raster.train(n))` in neuron order.
    ///
    /// The default is already allocation-free in steady state because
    /// [`NeuralCoding::decode`] takes the train by reference.
    fn decode_into(&self, raster: &SpikeRaster, cfg: &CodingConfig, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..raster.num_neurons()).map(|n| self.decode(raster.train(n), cfg)));
    }

    /// Sparsity-aware sibling of [`NeuralCoding::decode_into`]: decodes only
    /// the **active** (non-empty) trains, writes `+0.0` for silent neurons
    /// (exactly what [`NeuralCoding::decode`] contracts to return for them),
    /// and records in `active` the ascending indices of every neuron whose
    /// decoded value is nonzero.
    ///
    /// The produced `out` is bit-identical to `decode_into` over the same
    /// raster, while `active` is precisely the column set the sparse matrix
    /// kernels may restrict themselves to — indices outside `active` carry
    /// an exact `0.0`, whose product with any finite weight is a bitwise
    /// no-op on the accumulator (see `nrsnn_tensor::matvec_sparse_slices`).
    /// All three buffers are cleared first, keeping their capacity.
    ///
    /// `scratch` is caller-owned reusable space (the simulation workspace
    /// passes one buffer per inference): codings with a per-raster-constant
    /// PSC structure hoist it in there — e.g. TTAS tabulates its
    /// exponentially decaying kernel once per raster instead of calling
    /// `exp` once per spike.  The default implementation ignores it.
    fn decode_active_into(
        &self,
        raster: &SpikeRaster,
        cfg: &CodingConfig,
        out: &mut Vec<f32>,
        active: &mut Vec<u32>,
        _scratch: &mut Vec<f32>,
    ) {
        out.clear();
        active.clear();
        for (n, train) in raster.iter() {
            if train.is_empty() {
                out.push(0.0);
                continue;
            }
            let value = self.decode(train, cfg);
            if value != 0.0 {
                active.push(n as u32);
            }
            out.push(value);
        }
    }
}

/// Tag identifying a coding scheme (with its structural parameter for TTAS).
///
/// ```
/// use nrsnn_snn::{CodingConfig, CodingKind};
///
/// // The four baseline codings of Figs. 2-3, plus the paper's TTAS.
/// let mut kinds = CodingKind::baselines();
/// kinds.push(CodingKind::Ttas(5));
/// assert_eq!(kinds.last().unwrap().label(), "TTAS(5)");
///
/// // Every kind round-trips an activation through encode/decode.
/// let cfg = CodingConfig::new(64, 1.0);
/// for kind in kinds {
///     let coding = kind.build();
///     let decoded = coding.decode(&coding.encode(0.5, &cfg), &cfg);
///     assert!((decoded - 0.5).abs() < 0.25, "{}: {decoded}", kind.label());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodingKind {
    /// Rate coding.
    Rate,
    /// Phase coding (weighted spikes).
    Phase,
    /// Burst coding.
    Burst,
    /// Time-to-first-spike coding.
    Ttfs,
    /// Time-to-average-spike coding with the given burst duration `t_a`.
    Ttas(u32),
}

impl CodingKind {
    /// The encoding threshold used by default in this reproduction.
    ///
    /// The paper finds its per-coding thresholds empirically (§V); we do the
    /// same for our substitute networks and datasets.  Because the synthetic
    /// activation distributions are far less heavy-tailed than VGG16's, the
    /// empirical search lands at θ = 1.0 for every coding (no clipping of
    /// the normalised activations); smaller ceilings trade accuracy for
    /// fewer spikes, which the `ablation_threshold` bench quantifies.
    pub fn default_threshold(&self) -> f32 {
        1.0
    }

    /// The thresholds the paper reports for its VGG16 setting (§V):
    /// θ = 0.4 (rate), 0.4 (burst), 1.2 (phase), 0.8 (TTFS); TTAS inherits
    /// the TTFS value.  Kept for reference and for the threshold-sensitivity
    /// ablation.
    pub fn paper_threshold(&self) -> f32 {
        match self {
            CodingKind::Rate | CodingKind::Burst => 0.4,
            CodingKind::Phase => 1.2,
            CodingKind::Ttfs | CodingKind::Ttas(_) => 0.8,
        }
    }

    /// Validates the kind's structural parameters.
    ///
    /// # Errors
    /// Returns [`crate::SnnError::InvalidConfig`] for `Ttas(0)` — a
    /// zero-length burst encodes nothing.  Grid builders and model loaders
    /// call this up front so a degenerate kind is a typed error instead of
    /// a silent coercion inside [`CodingKind::build`].
    pub fn validate(&self) -> crate::Result<()> {
        if let CodingKind::Ttas(duration) = self {
            TtasCoding::new(*duration)?;
        }
        Ok(())
    }

    /// Builds the coding with its default structural parameters.
    ///
    /// Infallible by design (it backs `Box<dyn NeuralCoding>` factories all
    /// over the workspace): a degenerate `Ttas(0)` builds via the explicit
    /// [`TtasCoding::clamped`] constructor.  Call [`CodingKind::validate`]
    /// first wherever a typed rejection is wanted.
    pub fn build(&self) -> Box<dyn NeuralCoding> {
        match self {
            CodingKind::Rate => Box::new(RateCoding::new()),
            CodingKind::Phase => Box::new(PhaseCoding::new()),
            CodingKind::Burst => Box::new(BurstCoding::new()),
            CodingKind::Ttfs => Box::new(TtfsCoding::new()),
            CodingKind::Ttas(duration) => Box::new(TtasCoding::clamped(*duration)),
        }
    }

    /// A total-order key over coding kinds: the paper's presentation order
    /// (rate, phase, burst, TTFS, then TTAS by burst duration).
    ///
    /// Sweep results are sorted with this key so their order is a function
    /// of the grid alone, never of task completion order.
    pub fn order_index(&self) -> (u8, u32) {
        match self {
            CodingKind::Rate => (0, 0),
            CodingKind::Phase => (1, 0),
            CodingKind::Burst => (2, 0),
            CodingKind::Ttfs => (3, 0),
            CodingKind::Ttas(d) => (4, *d),
        }
    }

    /// Short label for tables and figures.
    pub fn label(&self) -> String {
        match self {
            CodingKind::Rate => "Rate".to_string(),
            CodingKind::Phase => "Phase".to_string(),
            CodingKind::Burst => "Burst".to_string(),
            CodingKind::Ttfs => "TTFS".to_string(),
            CodingKind::Ttas(d) => format!("TTAS({d})"),
        }
    }

    /// All codings compared in the paper's Figs. 2–3 (the four baselines).
    pub fn baselines() -> Vec<CodingKind> {
        vec![
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds_match_section_v() {
        assert_eq!(CodingKind::Rate.paper_threshold(), 0.4);
        assert_eq!(CodingKind::Burst.paper_threshold(), 0.4);
        assert_eq!(CodingKind::Phase.paper_threshold(), 1.2);
        assert_eq!(CodingKind::Ttfs.paper_threshold(), 0.8);
        assert_eq!(CodingKind::Ttas(5).paper_threshold(), 0.8);
    }

    #[test]
    fn default_thresholds_avoid_clipping() {
        for kind in CodingKind::baselines() {
            assert_eq!(kind.default_threshold(), 1.0);
        }
        assert_eq!(CodingKind::Ttas(5).default_threshold(), 1.0);
    }

    #[test]
    fn build_produces_matching_kind() {
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(3),
        ] {
            assert_eq!(kind.build().kind(), kind);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(5),
            CodingKind::Ttas(10),
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn baselines_exclude_ttas() {
        let b = CodingKind::baselines();
        assert_eq!(b.len(), 4);
        assert!(!b.iter().any(|k| matches!(k, CodingKind::Ttas(_))));
    }

    /// All codings should round-trip a mid-range value reasonably well.
    #[test]
    fn all_codings_round_trip_mid_value() {
        let cfg = CodingConfig::new(128, 1.0);
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(5),
        ] {
            let coding = kind.build();
            let spikes = coding.encode(0.5, &cfg);
            let decoded = coding.decode(&spikes, &cfg);
            assert!(
                (decoded - 0.5).abs() < 0.12,
                "{}: decoded {decoded} for 0.5",
                coding.name()
            );
        }
    }

    /// Zero activation must produce no spikes under every coding.
    #[test]
    fn zero_activation_is_silent() {
        let cfg = CodingConfig::new(64, 1.0);
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(4),
        ] {
            let coding = kind.build();
            assert!(coding.encode(0.0, &cfg).is_empty(), "{}", coding.name());
            assert_eq!(coding.decode(&[], &cfg), 0.0);
        }
    }

    /// `encode_into` must reproduce `encode` exactly for every coding and a
    /// spread of values, and `decode_into` must match per-train `decode` —
    /// this is the contract the allocation-free simulation path relies on.
    #[test]
    fn into_variants_match_allocating_encode_decode() {
        for time_steps in [17, 64, 128] {
            let cfg = CodingConfig::new(time_steps, 1.0);
            for kind in [
                CodingKind::Rate,
                CodingKind::Phase,
                CodingKind::Burst,
                CodingKind::Ttfs,
                CodingKind::Ttas(5),
                CodingKind::Ttas(1),
            ] {
                let coding = kind.build();
                let mut buf = vec![77u32; 3]; // dirty: must be cleared
                let values = [-0.2f32, 0.0, 1e-6, 0.1, 0.33, 0.5, 0.73, 0.99, 1.0, 2.5];
                for &v in &values {
                    coding.encode_into(v, &cfg, &mut buf);
                    assert_eq!(buf, coding.encode(v, &cfg), "{} value {v}", coding.name());
                }
                let trains: Vec<Vec<u32>> =
                    values.iter().map(|&v| coding.encode(v, &cfg)).collect();
                let raster = SpikeRaster::from_trains(trains.clone(), cfg.time_steps);
                let mut decoded = vec![9.0f32; 2];
                coding.decode_into(&raster, &cfg, &mut decoded);
                let reference: Vec<f32> = trains.iter().map(|t| coding.decode(t, &cfg)).collect();
                assert_eq!(
                    decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{}",
                    coding.name()
                );
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate_ttas_only() {
        assert!(CodingKind::Ttas(0).validate().is_err());
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(1),
            CodingKind::Ttas(10),
        ] {
            assert!(kind.validate().is_ok(), "{}", kind.label());
        }
        // The escape hatch stays explicit: building the degenerate kind
        // clamps through the documented constructor.
        assert_eq!(CodingKind::Ttas(0).build().kind(), CodingKind::Ttas(1));
    }

    /// The sparsity contract: an empty train decodes to exactly +0.0 under
    /// every coding (not -0.0, not a denormal — bit pattern zero), so the
    /// sparse engine may write the constant instead of calling decode.
    #[test]
    fn empty_train_decodes_to_positive_zero_bits() {
        for time_steps in [1u32, 17, 128] {
            let cfg = CodingConfig::new(time_steps, 1.0);
            for kind in [
                CodingKind::Rate,
                CodingKind::Phase,
                CodingKind::Burst,
                CodingKind::Ttfs,
                CodingKind::Ttas(5),
            ] {
                let coding = kind.build();
                assert_eq!(
                    coding.decode(&[], &cfg).to_bits(),
                    0u32,
                    "{} T={time_steps}",
                    kind.label()
                );
            }
        }
    }

    /// `decode_active_into` must reproduce `decode_into` bit for bit and
    /// report exactly the nonzero positions as active.
    #[test]
    fn decode_active_into_matches_decode_into_and_tracks_nonzeros() {
        let cfg = CodingConfig::new(64, 1.0);
        for kind in [
            CodingKind::Rate,
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(5),
        ] {
            let coding = kind.build();
            let values = [0.0f32, 0.8, 0.0, 0.33, 1.0, 0.0, 1e-6, 0.51];
            let trains: Vec<Vec<u32>> = values.iter().map(|&v| coding.encode(v, &cfg)).collect();
            let raster = SpikeRaster::from_trains(trains, cfg.time_steps);

            let mut dense = vec![9.0f32; 2]; // dirty: must be reset
            coding.decode_into(&raster, &cfg, &mut dense);
            let mut sparse = vec![-9.0f32; 100];
            let mut active = vec![42u32; 3];
            let mut scratch = Vec::new();
            coding.decode_active_into(&raster, &cfg, &mut sparse, &mut active, &mut scratch);

            assert_eq!(
                dense.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                sparse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}",
                kind.label()
            );
            let expected_active: Vec<u32> = dense
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(n, _)| n as u32)
                .collect();
            assert_eq!(active, expected_active, "{}", kind.label());
        }
    }

    /// Spike-count ordering from the paper: TTFS ≤ TTAS ≪ burst ≤ rate/phase.
    #[test]
    fn spike_count_ordering_matches_paper() {
        let cfg = CodingConfig::new(128, 1.0);
        let value = 0.9;
        let rate = CodingKind::Rate.build().encode(value, &cfg).len();
        let phase = CodingKind::Phase.build().encode(value, &cfg).len();
        let burst = CodingKind::Burst.build().encode(value, &cfg).len();
        let ttfs = CodingKind::Ttfs.build().encode(value, &cfg).len();
        let ttas = CodingKind::Ttas(5).build().encode(value, &cfg).len();
        assert_eq!(ttfs, 1);
        assert!((1..=5).contains(&ttas));
        assert!(burst <= 8);
        assert!(rate > burst, "rate {rate} burst {burst}");
        assert!(phase > burst);
    }
}
