//! Time-to-first-spike (TTFS) coding.

use nrsnn_tensor::simd::{active_backend, clamp_ratio, encode_ratio_with};

use crate::coding::CodingScratch;
use crate::{CodingConfig, CodingKind, NeuralCoding, SpikeRaster};

/// TTFS coding after Park et al. ("T2FSNN", DAC 2020): a single spike whose
/// *time* carries the value through an exponentially decaying PSC kernel,
///
/// ```text
/// encode:  t_f = round(−τ · ln(a/θ))       (clamped to the window)
/// decode:  a   = θ · exp(−t_f/τ)
/// ```
///
/// One spike per activation makes TTFS the most efficient coding by far, but
/// also:
///
/// * **all-or-none under deletion** — losing the one spike deletes the whole
///   activation (decoded value 0 or `A`, never in between), which combined
///   with dropout-trained source DNNs makes TTFS the most deletion-robust
///   baseline (Fig. 2);
/// * **fragile under jitter** — a shift of Δ steps multiplies the decoded
///   value by `exp(−Δ/τ)` (Fig. 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TtfsCoding;

impl TtfsCoding {
    /// Creates a TTFS coding.
    pub fn new() -> Self {
        TtfsCoding
    }

    /// The spike time encoding a value `v ∈ (0, θ]`, or `None` for values too
    /// small to be represented within the window.
    pub fn spike_time(value: f32, cfg: &CodingConfig) -> Option<u32> {
        TtfsCoding::spike_time_of_ratio(clamp_ratio(value, cfg.threshold), cfg)
    }

    /// [`TtfsCoding::spike_time`] from a precomputed clamped activation
    /// ratio `min(max(v, 0), θ)/θ` — the quantity the lane-blocked encode
    /// computes 8 neurons at a time; only the logarithm below stays
    /// per-neuron scalar.
    pub(crate) fn spike_time_of_ratio(ratio: f32, cfg: &CodingConfig) -> Option<u32> {
        if ratio <= 0.0 {
            return None;
        }
        let tau = cfg.ttfs_tau();
        let t = (-tau * ratio.ln()).round();
        if t >= cfg.time_steps as f32 {
            // Too small to represent: the spike would fall outside the window.
            return None;
        }
        Some(t.max(0.0) as u32)
    }

    /// The value carried by a spike at time `t`.
    pub fn value_at(t: u32, cfg: &CodingConfig) -> f32 {
        cfg.threshold * (-(t as f32) / cfg.ttfs_tau()).exp()
    }
}

impl NeuralCoding for TtfsCoding {
    fn name(&self) -> String {
        "ttfs".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Ttfs
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        if let Some(t) = TtfsCoding::spike_time(activation, cfg) {
            out.push(t);
        }
    }

    fn encode_raster_into(
        &self,
        values: &[f32],
        cfg: &CodingConfig,
        raster: &mut SpikeRaster,
        scratch: &mut CodingScratch,
    ) {
        scratch.lanes.clear();
        scratch.lanes.resize(values.len(), 0.0);
        encode_ratio_with(active_backend(), values, cfg.threshold, &mut scratch.lanes);
        let ratios = &scratch.lanes;
        raster.fill_trains_trusted(values.len(), cfg.time_steps, |i, train| {
            if let Some(t) = TtfsCoding::spike_time_of_ratio(ratios[i], cfg) {
                train.push(t);
            }
        });
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        // Only the first spike carries information in TTFS.
        match train.first() {
            Some(&t) => TtfsCoding::value_at(t, cfg),
            None => 0.0,
        }
    }

    fn decode_active_into(
        &self,
        raster: &SpikeRaster,
        cfg: &CodingConfig,
        out: &mut Vec<f32>,
        active: &mut Vec<u32>,
        scratch: &mut Vec<f32>,
    ) {
        out.clear();
        active.clear();
        // With more active trains than time steps it is cheaper to tabulate
        // `value_at` once per step than to exp once per train; below that
        // the per-train evaluation wins.  Both read the same expression, so
        // the choice is invisible in the output bits.
        let tabulate = raster.total_spikes() > raster.num_steps() as usize;
        if tabulate {
            scratch.clear();
            scratch.extend((0..raster.num_steps()).map(|t| TtfsCoding::value_at(t, cfg)));
        }
        for (n, train) in raster.iter() {
            let value = match train.first() {
                Some(&t) if tabulate => scratch[t as usize],
                Some(&t) => TtfsCoding::value_at(t, cfg),
                None => {
                    out.push(0.0);
                    continue;
                }
            };
            if value != 0.0 {
                active.push(n as u32);
            }
            out.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_across_the_dynamic_range() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = TtfsCoding::new();
        for v in [1.0, 0.7, 0.5, 0.2, 0.05] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            let rel = (decoded - v).abs() / v;
            assert!(rel < 0.1, "v {v} decoded {decoded}");
        }
    }

    #[test]
    fn exactly_one_spike_per_value() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = TtfsCoding::new();
        assert_eq!(coding.encode(0.9, &cfg).len(), 1);
        assert_eq!(coding.encode(0.02, &cfg).len(), 1);
        assert!(coding.encode(0.0, &cfg).is_empty());
    }

    #[test]
    fn larger_values_spike_earlier() {
        let cfg = CodingConfig::new(128, 1.0);
        let big = TtfsCoding::spike_time(0.9, &cfg).unwrap();
        let small = TtfsCoding::spike_time(0.1, &cfg).unwrap();
        assert!(big < small);
        assert_eq!(TtfsCoding::spike_time(1.0, &cfg).unwrap(), 0);
    }

    #[test]
    fn values_below_dynamic_range_are_silent() {
        let cfg = CodingConfig::new(32, 1.0);
        // Values far below exp(-(T-1)/τ) cannot be placed within the window.
        assert!(TtfsCoding::spike_time(1e-12, &cfg).is_none());
    }

    #[test]
    fn deletion_is_all_or_none() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = TtfsCoding::new();
        let spikes = coding.encode(0.6, &cfg);
        assert!((coding.decode(&spikes, &cfg) - 0.6).abs() < 0.06);
        assert_eq!(coding.decode(&[], &cfg), 0.0);
    }

    #[test]
    fn jitter_scales_value_exponentially() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = TtfsCoding::new();
        let t = TtfsCoding::spike_time(0.5, &cfg).unwrap();
        let clean = coding.decode(&[t], &cfg);
        let shifted = coding.decode(&[t + 5], &cfg);
        let expected_ratio = (-(5.0) / cfg.ttfs_tau()).exp();
        assert!(((shifted / clean) - expected_ratio).abs() < 1e-3);
        assert!(shifted < clean);
    }

    #[test]
    fn clipping_at_threshold() {
        let cfg = CodingConfig::new(128, 0.8);
        let coding = TtfsCoding::new();
        let decoded = coding.decode(&coding.encode(2.0, &cfg), &cfg);
        assert!((decoded - 0.8).abs() < 1e-5);
    }
}
