//! Phase coding (weighted spikes).

use crate::{CodingConfig, CodingKind, NeuralCoding, Result, SnnError};

/// Phase coding after Kim et al. ("Deep neural networks with weighted
/// spikes"): time is divided into periods of `period` steps driven by a
/// global oscillator, and a spike in phase `k` of a period carries the
/// binary weight `2^-(k+1)`.
///
/// An activation is encoded as its fixed-point binary expansion: the same
/// phase pattern is repeated in every period of the window, and the decoder
/// averages over periods.  Because the synaptic weight of a spike depends on
/// its phase, a one-step jitter changes the contribution of a spike by a
/// factor of two — phase coding is therefore efficient but fragile to jitter
/// (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCoding {
    period: u32,
}

impl PhaseCoding {
    /// Creates a phase coding with the canonical period of 8 phases.
    pub fn new() -> Self {
        PhaseCoding { period: 8 }
    }

    /// Creates a phase coding with a custom period (number of phases).
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] for a zero period: a period of 0
    /// phases carries no bits, and silently clamping it would change the
    /// coding's resolution behind the caller's back.
    pub fn with_period(period: u32) -> Result<Self> {
        if period == 0 {
            return Err(SnnError::InvalidConfig(
                "phase coding period must be at least 1 phase".to_string(),
            ));
        }
        Ok(PhaseCoding { period })
    }

    /// The number of phases per period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Weight of a spike at absolute time `t`.
    fn phase_weight(&self, t: u32) -> f32 {
        let phase = t % self.period;
        0.5f32.powi(phase as i32 + 1)
    }

    fn num_periods(&self, cfg: &CodingConfig) -> u32 {
        (cfg.time_steps / self.period).max(1)
    }
}

impl Default for PhaseCoding {
    fn default() -> Self {
        PhaseCoding::new()
    }
}

impl NeuralCoding for PhaseCoding {
    fn name(&self) -> String {
        "phase".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Phase
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        let v = cfg.clamp(activation) / cfg.threshold;
        if v <= 0.0 {
            return;
        }
        // Greedy binary expansion v ≈ Σ b_k 2^-(k+1), re-derived per period
        // so no bit buffer is needed: the expansion is a pure function of
        // `v`, hence identical in every period.
        let periods = self.num_periods(cfg);
        for p in 0..periods {
            let mut rem = v;
            for k in 0..self.period {
                let w = 0.5f32.powi(k as i32 + 1);
                if rem >= w - 1e-6 {
                    rem -= w;
                    let t = p * self.period + k;
                    if t < cfg.time_steps {
                        out.push(t);
                    }
                }
            }
        }
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        if train.is_empty() {
            // A silent neuron decodes to exactly +0.0 (the NeuralCoding
            // contract); `Sum`'s float identity is -0.0, which would leak
            // a negative zero out of the empty fold below.
            return 0.0;
        }
        let periods = self.num_periods(cfg) as f32;
        let sum: f32 = train.iter().map(|&t| self.phase_weight(t)).sum();
        cfg.threshold * sum / periods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_quantisation() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = PhaseCoding::new();
        for v in [0.1, 0.3, 0.5, 0.75, 0.99] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            // 8-bit expansion: resolution 1/256.
            assert!((decoded - v).abs() < 0.01, "v {v} decoded {decoded}");
        }
    }

    #[test]
    fn half_is_a_single_spike_per_period() {
        let cfg = CodingConfig::new(16, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.5, &cfg);
        // 0.5 = MSB only; two periods of 8 in a 16-step window.
        assert_eq!(spikes, vec![0, 8]);
    }

    #[test]
    fn one_step_jitter_changes_decoded_value_substantially() {
        let cfg = CodingConfig::new(8, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.5, &cfg); // spike at phase 0
        let jittered: Vec<u32> = spikes.iter().map(|&t| t + 1).collect();
        let clean = coding.decode(&spikes, &cfg);
        let noisy = coding.decode(&jittered, &cfg);
        // Weight halves: 0.5 -> 0.25.
        assert!((clean - 0.5).abs() < 1e-5);
        assert!((noisy - 0.25).abs() < 1e-5);
    }

    #[test]
    fn deletion_is_graded() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.9, &cfg);
        // Remove one period's worth of spikes: value drops by ~1/num_periods.
        let kept: Vec<u32> = spikes.iter().copied().filter(|&t| t >= 8).collect();
        let decoded = coding.decode(&kept, &cfg);
        let expected = 0.9 * 7.0 / 8.0;
        assert!((decoded - expected).abs() < 0.02, "decoded {decoded}");
    }

    #[test]
    fn custom_period_is_respected() {
        let coding = PhaseCoding::with_period(4).unwrap();
        assert_eq!(coding.period(), 4);
        let cfg = CodingConfig::new(16, 1.0);
        let spikes = coding.encode(0.5, &cfg);
        assert_eq!(spikes.len(), 4); // one MSB spike per 4-step period
    }

    #[test]
    fn zero_period_is_a_typed_error_not_a_silent_clamp() {
        assert!(matches!(
            PhaseCoding::with_period(0),
            Err(SnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn clipping_at_threshold() {
        let cfg = CodingConfig::new(64, 1.2);
        let coding = PhaseCoding::new();
        let decoded = coding.decode(&coding.encode(5.0, &cfg), &cfg);
        assert!(decoded <= 1.2 + 1e-5);
        assert!(decoded > 1.1);
    }
}
