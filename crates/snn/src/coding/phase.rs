//! Phase coding (weighted spikes).

use nrsnn_tensor::simd::{
    active_backend, phase_bits_value, phase_bits_with, phase_pow2_sum_with, sum8_by,
};

use crate::coding::CodingScratch;
use crate::{CodingConfig, CodingKind, NeuralCoding, Result, SnnError, SpikeRaster};

/// Largest period whose phase pattern fits the `u64` bit representation
/// the lane-blocked encode computes; longer periods (beyond any realistic
/// resolution — 64 binary digits exhaust f32 long before) take the legacy
/// greedy path.
const MAX_LANE_PERIOD: u32 = 64;

/// Largest period decoded through the exact integer accumulator: the
/// weighted-spike sum `Σ 2^-(phase+1)` is accumulated as the integer
/// `Σ 2^(period-1-phase)`, which stays exact in a `u64` for any realistic
/// train while `period ≤ 24` keeps the largest per-spike term comfortably
/// below the overflow horizon.  Longer periods keep the float fold.
const MAX_EXACT_PERIOD: u32 = 24;

/// Bounds for the precomputed train table the block encode uses: with
/// `period ≤ 8` there are at most 256 distinct bit patterns, so every
/// canonical train for a fixed window is tabulated once (≤ 1 MiB at the
/// step cap, ~48 KiB at the paper's windows) and each neuron's train
/// becomes a single `extend_from_slice`.
const PHASE_TABLE_MAX_PERIOD: u32 = 8;
const PHASE_TABLE_MAX_STEPS: u32 = 2048;

/// Phase coding after Kim et al. ("Deep neural networks with weighted
/// spikes"): time is divided into periods of `period` steps driven by a
/// global oscillator, and a spike in phase `k` of a period carries the
/// binary weight `2^-(k+1)`.
///
/// An activation is encoded as its fixed-point binary expansion: the same
/// phase pattern is repeated in every period of the window, and the decoder
/// averages over periods.  Because the synaptic weight of a spike depends on
/// its phase, a one-step jitter changes the contribution of a spike by a
/// factor of two — phase coding is therefore efficient but fragile to jitter
/// (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCoding {
    period: u32,
}

impl PhaseCoding {
    /// Creates a phase coding with the canonical period of 8 phases.
    pub fn new() -> Self {
        PhaseCoding { period: 8 }
    }

    /// Creates a phase coding with a custom period (number of phases).
    ///
    /// # Errors
    /// Returns [`SnnError::InvalidConfig`] for a zero period: a period of 0
    /// phases carries no bits, and silently clamping it would change the
    /// coding's resolution behind the caller's back.
    pub fn with_period(period: u32) -> Result<Self> {
        if period == 0 {
            return Err(SnnError::InvalidConfig(
                "phase coding period must be at least 1 phase".to_string(),
            ));
        }
        Ok(PhaseCoding { period })
    }

    /// The number of phases per period.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Weight of a spike at absolute time `t`.
    fn phase_weight(&self, t: u32) -> f32 {
        let phase = t % self.period;
        0.5f32.powi(phase as i32 + 1)
    }

    /// The weighted-spike sum of a train as an exact integer: spike at
    /// phase `k` contributes `2^(period-1-k)`, i.e. the float sum
    /// `Σ 2^-(k+1)` scaled by `2^period`.  Integer addition is exact and
    /// associative, so this is independent of spike order, accumulation
    /// strategy and ISA by construction — the decoded value rounds exactly
    /// once, in [`PhaseCoding::scale_exact`].
    /// Exactness also frees the accumulation *shape*: power-of-two periods
    /// (the canonical 8, and every `with_period` of 1/2/4/16) dispatch to
    /// the runtime-selected [`phase_pow2_sum_with`] kernel — per-lane
    /// variable shifts on AVX2, unrolled scalar otherwise — which returns
    /// the identical `u64` on every ISA without any canonical-order
    /// machinery.
    fn weighted_sum_exact(&self, train: &[u32]) -> u64 {
        if self.period.is_power_of_two() {
            phase_pow2_sum_with(active_backend(), train, self.period - 1)
        } else {
            let top = self.period - 1;
            train
                .iter()
                .fold(0u64, |s, &t| s + (1u64 << (top - (t % self.period))))
        }
    }

    /// Scales an exact integer spike sum to the decoded activation:
    /// `θ · (s / 2^period) / num_periods`, evaluated in f64 (both factors
    /// of the denominator are exact) and rounded to f32 once.
    fn scale_exact(&self, s: u64, cfg: &CodingConfig) -> f32 {
        let denom = ((1u64 << self.period) * u64::from(self.num_periods(cfg))) as f64;
        (f64::from(cfg.threshold) * (s as f64) / denom) as f32
    }

    fn num_periods(&self, cfg: &CodingConfig) -> u32 {
        (cfg.time_steps / self.period).max(1)
    }

    /// Fills the per-phase weight (`2^-(k+1)`) and firing-threshold
    /// (`w_k − 1e-6`) tables the bit-pattern kernel consumes.
    fn fill_weight_tables(&self, weights: &mut Vec<f32>, thresholds: &mut Vec<f32>) {
        weights.clear();
        thresholds.clear();
        for k in 0..self.period {
            let w = 0.5f32.powi(k as i32 + 1);
            weights.push(w);
            thresholds.push(w - 1e-6);
        }
    }

    /// Replays one period's bit pattern across every period of the window:
    /// bit `k` of `bits` fires at `p·period + k`, times emitted strictly
    /// ascending and filtered to the window.  The pattern is decomposed
    /// into its set phases once, then replayed per period through
    /// `chunks_exact_mut` — straight adds and stores with no per-spike
    /// bounds or capacity checks (train materialisation is the scalar tail
    /// of the lane-blocked encode, so this loop is the hot path).  A
    /// window of at least one period never clips (`base + k < T` holds for
    /// every complete period), so the `t < T` filter only guards windows
    /// shorter than a single period.
    fn emit_bits(&self, bits: u64, cfg: &CodingConfig, out: &mut Vec<u32>) {
        if bits == 0 {
            return;
        }
        let mut phases = [0u32; MAX_LANE_PERIOD as usize];
        let mut m = 0usize;
        let mut b = bits;
        while b != 0 {
            phases[m] = b.trailing_zeros();
            m += 1;
            b &= b - 1;
        }
        let phases = &phases[..m];
        let periods = self.num_periods(cfg);
        let full = if self.period <= cfg.time_steps {
            periods
        } else {
            0
        };
        let start = out.len();
        out.resize(start + full as usize * m, 0);
        for (p, chunk) in out[start..].chunks_exact_mut(m).enumerate() {
            let base = p as u32 * self.period;
            for (slot, &k) in chunk.iter_mut().zip(phases) {
                *slot = base + k;
            }
        }
        for p in full..periods {
            let base = p * self.period;
            for &k in phases {
                let t = base + k;
                if t < cfg.time_steps {
                    out.push(t);
                }
            }
        }
    }

    /// The original greedy per-period expansion, kept for periods whose bit
    /// pattern does not fit a `u64` (the lane-blocked path covers every
    /// realistic period).
    fn encode_greedy(&self, ratio: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        if ratio <= 0.0 {
            return;
        }
        for p in 0..self.num_periods(cfg) {
            let mut rem = ratio;
            for k in 0..self.period {
                let w = 0.5f32.powi(k as i32 + 1);
                if rem >= w - 1e-6 {
                    rem -= w;
                    let t = p * self.period + k;
                    if t < cfg.time_steps {
                        out.push(t);
                    }
                }
            }
        }
    }
}

impl Default for PhaseCoding {
    fn default() -> Self {
        PhaseCoding::new()
    }
}

impl NeuralCoding for PhaseCoding {
    fn name(&self) -> String {
        "phase".to_string()
    }

    fn kind(&self) -> CodingKind {
        CodingKind::Phase
    }

    fn encode(&self, activation: f32, cfg: &CodingConfig) -> Vec<u32> {
        let mut out = Vec::new();
        self.encode_into(activation, cfg, &mut out);
        out
    }

    fn encode_into(&self, activation: f32, cfg: &CodingConfig, out: &mut Vec<u32>) {
        out.clear();
        if self.period > MAX_LANE_PERIOD {
            let ratio = nrsnn_tensor::simd::clamp_ratio(activation, cfg.threshold);
            self.encode_greedy(ratio, cfg, out);
            return;
        }
        let p = self.period as usize;
        let mut weights = [0.0f32; MAX_LANE_PERIOD as usize];
        let mut thresholds = [0.0f32; MAX_LANE_PERIOD as usize];
        for (k, (w, th)) in weights[..p]
            .iter_mut()
            .zip(&mut thresholds[..p])
            .enumerate()
        {
            *w = 0.5f32.powi(k as i32 + 1);
            *th = *w - 1e-6;
        }
        let bits = phase_bits_value(activation, cfg.threshold, &weights[..p], &thresholds[..p]);
        self.emit_bits(bits, cfg, out);
    }

    fn encode_raster_into(
        &self,
        values: &[f32],
        cfg: &CodingConfig,
        raster: &mut SpikeRaster,
        scratch: &mut CodingScratch,
    ) {
        if self.period > MAX_LANE_PERIOD {
            raster.fill_trains(values.len(), cfg.time_steps, |i, train| {
                self.encode_into(values[i], cfg, train);
            });
            return;
        }
        self.fill_weight_tables(&mut scratch.weights, &mut scratch.thresholds);
        scratch.bits.clear();
        scratch.bits.resize(values.len(), 0);
        phase_bits_with(
            active_backend(),
            values,
            cfg.threshold,
            &scratch.weights,
            &scratch.thresholds,
            &mut scratch.bits,
        );
        if self.period <= PHASE_TABLE_MAX_PERIOD && cfg.time_steps <= PHASE_TABLE_MAX_STEPS {
            let key = Some((CodingKind::Phase, cfg.time_steps, self.period));
            if scratch.train_key != key {
                scratch.train_table.clear();
                scratch.train_offsets.clear();
                scratch.train_offsets.push(0);
                for pattern in 0..(1u64 << self.period) {
                    self.emit_bits(pattern, cfg, &mut scratch.train_table);
                    scratch.train_offsets.push(scratch.train_table.len() as u32);
                }
                scratch.train_key = key;
            }
            let bits = &scratch.bits;
            let (table, offsets) = (&scratch.train_table, &scratch.train_offsets);
            raster.fill_trains_trusted(values.len(), cfg.time_steps, |i, train| {
                let b = bits[i] as usize;
                train.extend_from_slice(&table[offsets[b] as usize..offsets[b + 1] as usize]);
            });
            return;
        }
        let bits = &scratch.bits;
        raster.fill_trains_trusted(values.len(), cfg.time_steps, |i, train| {
            self.emit_bits(bits[i], cfg, train);
        });
    }

    fn decode(&self, train: &[u32], cfg: &CodingConfig) -> f32 {
        if train.is_empty() {
            // A silent neuron decodes to exactly +0.0 (the NeuralCoding
            // contract); `Sum`'s float identity is -0.0, which would leak
            // a negative zero out of the empty fold below.
            return 0.0;
        }
        if self.period <= MAX_EXACT_PERIOD {
            return self.scale_exact(self.weighted_sum_exact(train), cfg);
        }
        let periods = self.num_periods(cfg) as f32;
        let sum = sum8_by(train.len(), |i| self.phase_weight(train[i]));
        cfg.threshold * sum / periods
    }

    fn decode_active_into(
        &self,
        raster: &SpikeRaster,
        cfg: &CodingConfig,
        out: &mut Vec<f32>,
        active: &mut Vec<u32>,
        _scratch: &mut Vec<f32>,
    ) {
        out.clear();
        active.clear();
        for (n, train) in raster.iter() {
            if train.is_empty() {
                out.push(0.0);
                continue;
            }
            // Same two paths as `decode` (exact integer accumulator for
            // realistic periods, float fold beyond), keeping the two
            // decode entry points bit-identical by construction.
            let value = if self.period <= MAX_EXACT_PERIOD {
                self.scale_exact(self.weighted_sum_exact(train), cfg)
            } else {
                let periods = self.num_periods(cfg) as f32;
                let sum = sum8_by(train.len(), |i| self.phase_weight(train[i]));
                cfg.threshold * sum / periods
            };
            if value != 0.0 {
                active.push(n as u32);
            }
            out.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_quantisation() {
        let cfg = CodingConfig::new(128, 1.0);
        let coding = PhaseCoding::new();
        for v in [0.1, 0.3, 0.5, 0.75, 0.99] {
            let decoded = coding.decode(&coding.encode(v, &cfg), &cfg);
            // 8-bit expansion: resolution 1/256.
            assert!((decoded - v).abs() < 0.01, "v {v} decoded {decoded}");
        }
    }

    #[test]
    fn half_is_a_single_spike_per_period() {
        let cfg = CodingConfig::new(16, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.5, &cfg);
        // 0.5 = MSB only; two periods of 8 in a 16-step window.
        assert_eq!(spikes, vec![0, 8]);
    }

    #[test]
    fn one_step_jitter_changes_decoded_value_substantially() {
        let cfg = CodingConfig::new(8, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.5, &cfg); // spike at phase 0
        let jittered: Vec<u32> = spikes.iter().map(|&t| t + 1).collect();
        let clean = coding.decode(&spikes, &cfg);
        let noisy = coding.decode(&jittered, &cfg);
        // Weight halves: 0.5 -> 0.25.
        assert!((clean - 0.5).abs() < 1e-5);
        assert!((noisy - 0.25).abs() < 1e-5);
    }

    #[test]
    fn deletion_is_graded() {
        let cfg = CodingConfig::new(64, 1.0);
        let coding = PhaseCoding::new();
        let spikes = coding.encode(0.9, &cfg);
        // Remove one period's worth of spikes: value drops by ~1/num_periods.
        let kept: Vec<u32> = spikes.iter().copied().filter(|&t| t >= 8).collect();
        let decoded = coding.decode(&kept, &cfg);
        let expected = 0.9 * 7.0 / 8.0;
        assert!((decoded - expected).abs() < 0.02, "decoded {decoded}");
    }

    #[test]
    fn custom_period_is_respected() {
        let coding = PhaseCoding::with_period(4).unwrap();
        assert_eq!(coding.period(), 4);
        let cfg = CodingConfig::new(16, 1.0);
        let spikes = coding.encode(0.5, &cfg);
        assert_eq!(spikes.len(), 4); // one MSB spike per 4-step period
    }

    #[test]
    fn zero_period_is_a_typed_error_not_a_silent_clamp() {
        assert!(matches!(
            PhaseCoding::with_period(0),
            Err(SnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn long_periods_fall_back_to_the_greedy_path() {
        // 100 phases exceed the u64 bit representation; the greedy fallback
        // must still produce the canonical expansion for the leading bits
        // (trailing phases below the 1e-6 firing epsilon fire on their own,
        // as they always have — the fallback preserves that verbatim).
        let coding = PhaseCoding::with_period(100).unwrap();
        let cfg = CodingConfig::new(100, 1.0);
        let spikes = coding.encode(0.75, &cfg);
        assert_eq!(&spikes[..2], &[0, 1]); // 0.75 = 2^-1 + 2^-2
        assert!(spikes.windows(2).all(|w| w[0] < w[1]));
        assert!(spikes.iter().all(|&t| t < 100));
        assert!(coding.encode(0.0, &cfg).is_empty());
    }

    #[test]
    fn clipping_at_threshold() {
        let cfg = CodingConfig::new(64, 1.2);
        let coding = PhaseCoding::new();
        let decoded = coding.decode(&coding.encode(5.0, &cfg), &cfg);
        assert!(decoded <= 1.2 + 1e-5);
        assert!(decoded > 1.1);
    }
}
