//! # nrsnn-snn
//!
//! The spiking-neural-network substrate of the NRSNN reproduction:
//!
//! * [`SpikeRaster`] — per-neuron spike trains over a fixed time window;
//! * the [`NeuralCoding`] trait with the five codings studied in the paper:
//!   [`RateCoding`], [`PhaseCoding`], [`BurstCoding`], [`TtfsCoding`] and the
//!   proposed [`TtasCoding`] (time-to-average-spike, built on a simplified
//!   integrate-and-fire-or-burst neuron);
//! * DNN-to-SNN conversion with data-based threshold balancing
//!   ([`ThresholdBalancer`], [`convert`]);
//! * a layer-sequential clock-driven simulator ([`SnnNetwork`]) that injects
//!   synaptic spike noise between layers through the [`SpikeTransform`] hook
//!   (implemented by `nrsnn-noise`).
//!
//! ## Simulation model
//!
//! The simulator is *layer-sequential*: each layer receives the (noisy)
//! spike raster emitted by the previous layer over the full `T`-step window,
//! integrates it through the coding's post-synaptic-current kernel, applies
//! the converted weights, and re-encodes the resulting activations as the
//! raster for the next layer.  This is the pipelined window-per-layer scheme
//! used by conversion approaches with temporal coding (phase coding and
//! T2FSNN assign per-layer time windows) and it preserves exactly the
//! phenomena the paper studies: how much information a deleted or jittered
//! spike destroys under each coding.  See `DESIGN.md` §5.
//!
//! ## Example
//!
//! ```
//! use nrsnn_snn::{CodingConfig, NeuralCoding, TtfsCoding};
//!
//! let cfg = CodingConfig::new(64, 1.0);
//! let coding = TtfsCoding::new();
//! let spikes = coding.encode(0.5, &cfg);
//! assert_eq!(spikes.len(), 1); // TTFS uses a single spike
//! let decoded = coding.decode(&spikes, &cfg);
//! assert!((decoded - 0.5).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod coding;
mod config;
mod conversion;
mod error;
mod network;
mod neuron;
mod spike;
mod workspace;

pub use coding::{
    BurstCoding, CodingKind, CodingScratch, NeuralCoding, PhaseCoding, RateCoding, TtasCoding,
    TtfsCoding,
};
pub use config::CodingConfig;
pub use conversion::{convert, ConversionConfig, ThresholdBalancer};
pub use error::SnnError;
pub use network::{
    EvaluationSummary, IdentityTransform, SimulationOutcome, SnnLayer, SnnNetwork, SparsityPolicy,
    SpikeTransform,
};
pub use neuron::{IfNeuron, IfbNeuron, ResetKind};
pub use spike::SpikeRaster;
pub use workspace::{BatchOutcome, SimStage, SimWorkspace, StageEvent};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SnnError>;
