//! Reproduces Tables I and II: accuracy and spike counts under deletion and
//! jitter for all three datasets (MNIST-like, CIFAR-10-like, CIFAR-100-like)
//! and all methods, including the proposed TTAS + weight scaling.
//!
//! This is the heaviest example (three pipelines, every coding, every noise
//! point); expect a few minutes in release mode.
//!
//! Run with:
//! ```text
//! cargo run --release --example table1_table2_report
//! ```

use nrsnn::prelude::*;
use nrsnn_noise::{paper_table_deletion_points, paper_table_jitter_points};

fn main() -> Result<(), NrsnnError> {
    let datasets = vec![
        ("mnist-like", PipelineConfig::mnist_full()),
        ("cifar10-like", PipelineConfig::cifar10_full()),
        ("cifar100-like", PipelineConfig::cifar100_full()),
    ];

    let sweep = SweepConfig {
        time_steps: 128,
        eval_samples: 48,
        seed: 4242,
    };
    let deletion_points = paper_table_deletion_points();
    let jitter_points = paper_table_jitter_points();

    let mut table1_rows: Vec<Table1Row> = Vec::new();
    let mut table2_rows: Vec<Table2Row> = Vec::new();

    for (name, config) in datasets {
        println!("training pipeline for {name} ...");
        let pipeline = TrainedPipeline::build(&config)?;
        println!(
            "  DNN test accuracy: {:.1}%",
            pipeline.dnn_test_accuracy() * 100.0
        );

        // Table I rows: the four baselines + TTAS(5), all with weight scaling.
        let mut table1_codings = CodingKind::baselines();
        table1_codings.push(CodingKind::Ttas(5));
        let deletion = deletion_sweep(&pipeline, &table1_codings, &deletion_points, true, &sweep)?;
        for &coding in &table1_codings {
            table1_rows.push(Table1Row::from_points(name, &deletion, coding));
        }

        // Table II rows: the temporal codings + TTAS(10), no weight scaling.
        let table2_codings = vec![
            CodingKind::Phase,
            CodingKind::Burst,
            CodingKind::Ttfs,
            CodingKind::Ttas(10),
        ];
        let jitter = jitter_sweep(&pipeline, &table2_codings, &jitter_points, &sweep)?;
        for &coding in &table2_codings {
            table2_rows.push(Table2Row::from_points(name, &jitter, coding));
        }
    }

    println!();
    println!("{}", format_table1(&table1_rows, &deletion_points));
    println!();
    println!("{}", format_table2(&table2_rows, &jitter_points));

    // Also emit machine-readable results for EXPERIMENTS.md bookkeeping.
    let json = serde_json::json!({
        "table1": table1_rows,
        "table2": table2_rows,
    });
    std::fs::write("table1_table2_results.json", json.to_string()).ok();
    println!("(wrote table1_table2_results.json)");

    Ok(())
}
