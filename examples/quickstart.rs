//! Quickstart: train a small DNN on the MNIST-like synthetic dataset,
//! convert it to a spiking network, and compare clean vs noisy inference
//! under the paper's proposed noise-robust configuration (TTAS + weight
//! scaling).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use nrsnn::prelude::*;

fn main() -> Result<(), NrsnnError> {
    println!("== NRSNN quickstart ==");

    // 1. Train the source DNN (synthetic MNIST-scale task).
    let config = PipelineConfig::mnist_small();
    println!(
        "training DNN on {} ({} train / {} test samples) ...",
        config.dataset.name, config.dataset.train_samples, config.dataset.test_samples
    );
    let pipeline = TrainedPipeline::build(&config)?;
    println!(
        "DNN accuracy: train {:.1}%, test {:.1}%",
        pipeline.dnn_train_accuracy() * 100.0,
        pipeline.dnn_test_accuracy() * 100.0
    );

    // 2. Convert to an SNN and evaluate the clean baseline under TTFS coding
    //    (the most efficient existing temporal coding).
    let samples = 64;
    let clean = pipeline.evaluate_snn(
        CodingKind::Ttfs,
        128,
        &IdentityTransform,
        &WeightScaling::none(),
        samples,
        0,
    )?;
    println!(
        "TTFS SNN, clean:            {:.1}%  ({:.0} spikes/inference)",
        clean.accuracy_percent(),
        clean.mean_spikes_per_sample
    );

    // 3. Same network under 50 % spike deletion — the efficiency of TTFS
    //    comes with fragility.
    let deletion = DeletionNoise::new(0.5)?;
    let noisy = pipeline.evaluate_snn(
        CodingKind::Ttfs,
        128,
        &deletion,
        &WeightScaling::none(),
        samples,
        0,
    )?;
    println!(
        "TTFS SNN, 50% deletion:     {:.1}%",
        noisy.accuracy_percent()
    );

    // 4. The paper's counter-measures: TTAS coding + weight scaling.
    let robust = RobustSnnBuilder::new()
        .burst_duration(5)
        .expected_deletion(0.5)
        .time_steps(128)
        .build(&pipeline)?;
    let robust_noisy = robust.evaluate_under_deletion(&pipeline, 0.5, samples, 0)?;
    println!(
        "TTAS(5)+WS, 50% deletion:   {:.1}%  ({:.0} spikes/inference)",
        robust_noisy.accuracy_percent(),
        robust_noisy.mean_spikes_per_sample
    );

    // 5. And under jitter, where the burst averages the noise out.
    let robust_jitter = robust.evaluate_under_jitter(&pipeline, 2.0, samples, 0)?;
    println!(
        "TTAS(5)+WS, jitter σ=2.0:   {:.1}%",
        robust_jitter.accuracy_percent()
    );

    Ok(())
}
