//! Load generator for the `nrsnn-serve` inference server: trains a small
//! pipeline, exports the paper's robust configuration (TTAS + weight
//! scaling) as a serialized model file, serves it over TCP on an ephemeral
//! port, and drives it with N concurrent clients while printing throughput
//! and the server's own metrics (batch histogram, p50/p99 latency,
//! spikes/inference).
//!
//! Run with:
//! ```text
//! cargo run --release --example serve_loadgen
//! cargo run --release --example serve_loadgen -- --clients 8 --requests 32
//! cargo run --release --example serve_loadgen -- --smoke   # tiny CI run
//! cargo run --release --example serve_loadgen -- --binary  # binary wire + model file
//! cargo run --release --example serve_loadgen -- --report  # per-stage latency table + traces
//! NRSNN_THREADS=4 cargo run --release --example serve_loadgen
//! ```

use std::time::{Duration, Instant};

use nrsnn::prelude::*;
use nrsnn_serve::{ModelRegistry, ModelSpec, NoiseSpec, Server, ServerConfig, TcpClient};

const MODEL: &str = "mnist-ttas5-ws";
const MASTER_SEED: u64 = 2021;

struct Options {
    clients: usize,
    requests_per_client: usize,
    smoke: bool,
    binary: bool,
    report: bool,
}

fn parse_options() -> Options {
    let mut options = Options {
        clients: 4,
        requests_per_client: 32,
        smoke: false,
        binary: false,
        report: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--clients" => {
                options.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients needs a positive integer");
            }
            "--requests" => {
                options.requests_per_client = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a positive integer");
            }
            "--smoke" => options.smoke = true,
            "--binary" => options.binary = true,
            "--report" => options.report = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: serve_loadgen [--clients N] [--requests M] [--smoke] [--binary] [--report]"
                );
                std::process::exit(2);
            }
        }
    }
    if options.smoke {
        options.clients = options.clients.min(4);
        options.requests_per_client = options.requests_per_client.min(8);
    }
    options
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = parse_options();

    // 1. Train + convert the paper's robust configuration.
    let mut pipeline_config = PipelineConfig::mnist_small();
    if options.smoke {
        pipeline_config.dataset = pipeline_config.dataset.with_samples(96, 48);
        pipeline_config.epochs = 5;
    }
    println!("training MLP on {} ...", pipeline_config.dataset.name);
    let pipeline = TrainedPipeline::build(&pipeline_config)?;
    let robust = RobustSnnBuilder::new()
        .burst_duration(5)
        .expected_deletion(0.5)
        .time_steps(if options.smoke { 64 } else { 96 })
        .build(&pipeline)?;

    // 2. Export the converted network as a serialized model file and load
    //    it back through the registry — the same path a deployment uses.
    let spec = ModelSpec::from_network(
        MODEL,
        &robust.network,
        CodingKind::Ttas(5),
        &robust.config,
        NoiseSpec::Deletion(0.5),
        robust.scaling.factor(),
        MASTER_SEED,
    );
    // `--binary` exercises the compact `NRSM` model format; the registry
    // sniffs the format from the file's first byte either way.
    let model_path = std::env::temp_dir().join(if options.binary {
        "nrsnn_serve_loadgen_model.nrsm"
    } else {
        "nrsnn_serve_loadgen_model.json"
    });
    if options.binary {
        std::fs::write(&model_path, spec.to_binary()?)?;
    } else {
        std::fs::write(&model_path, spec.to_json())?;
    }
    println!(
        "exported {} model file: {} ({} bytes)",
        if options.binary { "binary" } else { "JSON" },
        model_path.display(),
        std::fs::metadata(&model_path)?.len()
    );
    let mut registry = ModelRegistry::new();
    registry.load_file(&model_path)?;

    // 3. Serve it over TCP on an ephemeral port.
    let mut server = Server::start(
        registry,
        ServerConfig {
            workers: 0, // auto (honours NRSNN_THREADS)
            max_batch: 16,
            batch_window: Duration::ZERO,
            queue_capacity: 1024,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.serve_tcp(("127.0.0.1", 0))?;
    println!(
        "serving {MODEL:?} on {addr} ({} wire) ...",
        if options.binary { "binary" } else { "JSON" }
    );

    // 4. Drive it with N concurrent TCP clients.
    let test_inputs = &pipeline.dataset().test.inputs;
    let rows = test_inputs.dims()[0];
    let total = options.clients * options.requests_per_client;
    let start = Instant::now();
    let clients: Vec<_> = (0..options.clients)
        .map(|client_index| {
            let inputs: Vec<Vec<f32>> = (0..options.requests_per_client)
                .map(|r| {
                    let index = client_index * options.requests_per_client + r;
                    test_inputs.row_slice(index % rows).expect("row").to_vec()
                })
                .collect();
            let binary = options.binary;
            std::thread::spawn(move || {
                let mut client = if binary {
                    TcpClient::connect_binary(addr).expect("connect")
                } else {
                    TcpClient::connect(addr).expect("connect")
                };
                let mut answered = 0usize;
                for (r, input) in inputs.iter().enumerate() {
                    let seed = (client_index * 1_000 + r) as u64;
                    let reply = client.infer_retrying(MODEL, input, seed).expect("infer");
                    assert!(!reply.logits.is_empty());
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    let mut answered = 0usize;
    for client in clients {
        answered += client.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(answered, total, "every request must receive a response");

    // 5. Report.
    let mut probe = if options.binary {
        TcpClient::connect_binary(addr)?
    } else {
        TcpClient::connect(addr)?
    };
    let stats = probe.stats()?;
    println!("\n==== serve_loadgen report ====");
    println!(
        "{total} requests from {} clients in {elapsed:.2}s -> {:.1} requests/s",
        options.clients,
        total as f64 / elapsed
    );
    println!(
        "served {} | busy-rejected {} | failed {} | batches {} (mean size {:.1})",
        stats.requests_served,
        stats.rejected_busy,
        stats.failed,
        stats.batches,
        stats.mean_batch_size
    );
    println!(
        "latency p50 {} us | p99 {} us | mean {:.0} us",
        stats.p50_latency_us, stats.p99_latency_us, stats.mean_latency_us
    );
    println!("spikes per inference: {:.0}", stats.spikes_per_inference);
    // Index i counts batches of size `batch_size_offset + i`: the leading
    // all-zero head of the histogram is trimmed on the wire.
    let sized: Vec<String> = stats
        .batch_size_histogram
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, count)| format!("{}:{count}", stats.batch_size_offset as usize + i))
        .collect();
    println!("batch-size histogram (size:count): {}", sized.join(" "));

    if options.report {
        println!("\n---- per-stage latency (from sharded stage histograms) ----");
        println!("{:<16} {:>12} {:>12}", "stage", "p50 (us)", "p99 (us)");
        for stage in &stats.stage_latency_ns {
            println!(
                "{:<16} {:>12.1} {:>12.1}",
                stage.stage,
                stage.p50_ns as f64 / 1_000.0,
                stage.p99_ns as f64 / 1_000.0
            );
        }
        println!("p999 end-to-end latency: {} us", stats.p999_latency_us);

        // Pull the most recent request timelines from the flight recorder
        // and print one fully decomposed: every microsecond accounted for.
        let traces = probe.trace(8)?;
        println!(
            "---- flight recorder: {} recent trace(s) ----",
            traces.len()
        );
        if let Some(trace) = traces.last() {
            let total_ns = trace.duration_ns().max(1);
            println!(
                "trace {} | model {} | seed {} | worker {} | backend {} | {} | {:.1} us total",
                trace.trace_id,
                trace.model,
                trace.seed,
                trace.worker,
                trace.backend,
                if trace.ok { "ok" } else { "failed" },
                total_ns as f64 / 1_000.0
            );
            let mut covered_ns = 0u64;
            for span in &trace.spans {
                let span_ns = span.end_ns.saturating_sub(span.start_ns);
                covered_ns += span_ns;
                let layer = span
                    .layer
                    .map_or_else(String::new, |l| format!(" layer {l}"));
                let kernel = span.kernel.as_ref().map_or_else(String::new, |k| {
                    format!(" [{k}, density {:.3}]", span.density)
                });
                println!(
                    "  {:<16}{layer}{kernel} {:>10.1} us ({:>4.1}%)",
                    span.stage,
                    span_ns as f64 / 1_000.0,
                    span_ns as f64 * 100.0 / total_ns as f64
                );
            }
            println!(
                "  span coverage: {:.1}% of end-to-end",
                covered_ns as f64 * 100.0 / total_ns as f64
            );
        }
    }

    server.shutdown();
    std::fs::remove_file(&model_path).ok();
    println!("server shut down cleanly");
    Ok(())
}
