//! Reproduces the analysis of §III: the effect of spike deletion (Fig. 2)
//! and spike jitter (Fig. 3) on a converted deep SNN under the four baseline
//! neural codings (rate, phase, burst, TTFS).
//!
//! The paper runs VGG16 on CIFAR-10; this reproduction uses the CIFAR-10-like
//! synthetic dataset and the small CNN preset (see DESIGN.md §2).  The
//! qualitative shape to look for:
//!
//! * deletion: every coding degrades as `p` grows, spike counts fall, and
//!   TTFS is the most robust baseline at moderate `p`;
//! * jitter: rate coding is essentially flat, temporal codings degrade, and
//!   TTFS degrades the fastest.
//!
//! Run with:
//! ```text
//! cargo run --release --example fig2_fig3_noise_analysis
//! ```

use nrsnn::prelude::*;

fn main() -> Result<(), NrsnnError> {
    let pipeline_config = PipelineConfig::cifar10_full();
    println!(
        "training CNN on {} (this is the slow part) ...",
        pipeline_config.dataset.name
    );
    let pipeline = TrainedPipeline::build(&pipeline_config)?;
    println!(
        "DNN test accuracy: {:.1}%\n",
        pipeline.dnn_test_accuracy() * 100.0
    );

    let sweep = SweepConfig {
        time_steps: 128,
        eval_samples: 64,
        seed: 2021,
    };
    let codings = CodingKind::baselines();
    // Both sweep grids fan out over all cores (or NRSNN_THREADS); results
    // are bit-identical to a serial run — see `examples/parallel_sweep.rs`.
    let parallel = ParallelConfig::auto();
    println!(
        "sweeping on {} worker thread(s)\n",
        parallel.effective_threads()
    );

    // ---- Fig. 2: deletion ----
    let deletion_levels = paper_deletion_probabilities();
    let fig2 = DeletionSweep::new(&codings, &deletion_levels)
        .config(sweep)
        .parallel(parallel)
        .run(&pipeline)?;
    println!("Fig. 2 — inference accuracy under spike deletion (no compensation):");
    println!("{}", format_sweep_table(&fig2, "Deletion p"));
    println!("Fig. 2 — mean spikes per inference:");
    for &coding in &codings {
        let spikes: Vec<String> = fig2
            .iter()
            .filter(|p| p.coding == coding)
            .map(|p| format!("{:>10.2e}", p.mean_spikes))
            .collect();
        println!("{:<8}{}", coding.label(), spikes.join(""));
    }
    println!();

    // ---- Fig. 3: jitter ----
    let jitter_levels = paper_jitter_intensities();
    let fig3 = JitterSweep::new(&codings, &jitter_levels)
        .config(sweep)
        .parallel(parallel)
        .run(&pipeline)?;
    println!("Fig. 3 — inference accuracy under spike jitter:");
    println!("{}", format_sweep_table(&fig3, "Jitter sigma"));

    Ok(())
}
