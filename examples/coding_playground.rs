//! A small didactic example that works at the level of single spike trains:
//! it encodes one activation value under every coding, corrupts the trains
//! with deletion and jitter, and prints what each decoder recovers.
//!
//! This makes the paper's §III argument tangible without running a full
//! network: the same noise destroys very different amounts of *information*
//! depending on the coding.
//!
//! Run with:
//! ```text
//! cargo run --release --example coding_playground
//! ```

use nrsnn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), NrsnnError> {
    let cfg = CodingConfig::new(64, 1.0);
    let value = 0.6f32;
    let deletion = DeletionNoise::new(0.5)?;
    let jitter = JitterNoise::new(2.0)?;
    let mut rng = StdRng::seed_from_u64(7);

    println!(
        "encoding the activation value {value} over {} time steps\n",
        cfg.time_steps
    );
    println!(
        "{:<10}{:>8}{:>12}{:>16}{:>16}",
        "coding", "spikes", "clean", "50% deletion", "jitter σ=2"
    );

    let codings: Vec<CodingKind> = vec![
        CodingKind::Rate,
        CodingKind::Phase,
        CodingKind::Burst,
        CodingKind::Ttfs,
        CodingKind::Ttas(5),
    ];

    for kind in codings {
        let coding = kind.build();
        let train = coding.encode(value, &cfg);

        // Wrap the single train in a raster so the noise models apply.
        let mut raster = nrsnn_snn::SpikeRaster::new(1, cfg.time_steps);
        raster.set_train(0, train.clone());

        let deleted = deletion.apply(&raster, &mut rng);
        let jittered = jitter.apply(&raster, &mut rng);

        let clean = coding.decode(&train, &cfg);
        let after_deletion = coding.decode(deleted.train(0), &cfg);
        let after_jitter = coding.decode(jittered.train(0), &cfg);

        println!(
            "{:<10}{:>8}{:>12.3}{:>16.3}{:>16.3}",
            kind.label(),
            train.len(),
            clean,
            after_deletion,
            after_jitter
        );
    }

    println!();
    println!("Things to notice (cf. §III of the paper):");
    println!(" * rate/phase/burst lose a graded fraction of the value under deletion;");
    println!(" * TTFS either keeps the whole value or loses all of it (all-or-none);");
    println!(" * rate is untouched by jitter, TTFS is hit hardest, TTAS averages it out.");

    Ok(())
}
