//! Demonstrates the allocation-free batched simulation engine: the same
//! samples simulated through the allocating reference path and through one
//! reusable [`SimWorkspace`], with identical results and the throughput
//! difference printed.
//!
//! Run with:
//! ```text
//! cargo run --release --example workspace_throughput
//! ```
//!
//! The workload mirrors the paper's Fig. 7 setting: a converted MLP under
//! TTAS(5) coding with weight scaling and 50 % spike deletion.  Every sweep
//! and evaluation in this workspace now funnels through the batched path —
//! one workspace per worker thread, zero steady-state allocations per
//! sample — while the old per-sample engine survives as
//! `simulate_unbuffered`, the executable reference the batched path is
//! regression-tested against.

use std::time::Instant;

use nrsnn::prelude::*;
use nrsnn_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), NrsnnError> {
    let mut pipeline_config = PipelineConfig::mnist_full();
    pipeline_config.dataset = pipeline_config.dataset.with_samples(384, 96);
    println!("training MLP on {} ...", pipeline_config.dataset.name);
    let pipeline = TrainedPipeline::build(&pipeline_config)?;

    let samples = 96usize;
    let seed = 7u64;
    let scaling = WeightScaling::for_deletion_probability(0.5)?;
    let network = pipeline.to_snn(&scaling)?;
    let kind = CodingKind::Ttas(5);
    let coding = kind.build();
    let cfg = pipeline.coding_config(kind, 96);
    let noise = DeletionNoise::new(0.5)?;
    let inputs = &pipeline.dataset().test.inputs;

    // --- allocating reference path -------------------------------------
    let start = Instant::now();
    let mut reference = Vec::with_capacity(samples);
    for sample in 0..samples {
        let row = inputs.row(sample)?;
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, sample as u64));
        let outcome =
            network.simulate_unbuffered(row.as_slice(), coding.as_ref(), &cfg, &noise, &mut rng)?;
        reference.push((outcome.predicted, outcome.total_spikes));
    }
    let alloc_secs = start.elapsed().as_secs_f64();

    // --- workspace path ------------------------------------------------
    let mut ws = SimWorkspace::for_network(&network, &cfg);
    let mut outcomes: Vec<BatchOutcome> = Vec::new();
    let start = Instant::now();
    network.simulate_batch(
        inputs,
        0..samples,
        coding.as_ref(),
        &cfg,
        &noise,
        |sample| StdRng::seed_from_u64(derive_seed(seed, sample as u64)),
        &mut ws,
        &mut outcomes,
    )?;
    let ws_secs = start.elapsed().as_secs_f64();

    // Identical results, sample by sample.
    for (sample, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            (outcome.predicted, outcome.total_spikes),
            reference[sample],
            "sample {sample} diverged"
        );
    }

    println!("\nfig7-style workload: TTAS(5)+WS under 50% deletion, {samples} samples");
    println!("{:<26}{:>12}{:>16}", "path", "seconds", "samples/s");
    println!(
        "{:<26}{:>12.3}{:>16.1}",
        "allocating (reference)",
        alloc_secs,
        samples as f64 / alloc_secs
    );
    println!(
        "{:<26}{:>12.3}{:>16.1}",
        "workspace (batched)",
        ws_secs,
        samples as f64 / ws_secs
    );
    println!(
        "speedup: {:.2}x — identical outcomes on every sample ✓",
        alloc_secs / ws_secs
    );
    Ok(())
}
