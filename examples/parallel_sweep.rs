//! Demonstrates the parallel sweep execution engine: the same noise grid
//! run serially and on a 4-thread pool, with bit-identical results and the
//! wall-clock difference printed.
//!
//! Run with:
//! ```text
//! cargo run --release --example parallel_sweep
//! NRSNN_THREADS=8 cargo run --release --example parallel_sweep
//! ```
//!
//! The grid is Table I's deletion points over all five codings on the
//! MNIST-like dataset.  Because every `(coding × level × sample)` cell
//! simulates with its own seed-derived RNG stream, thread count is purely a
//! throughput knob — the printed table is the same whatever the pool size.

use std::time::Instant;

use nrsnn::prelude::*;

fn main() -> Result<(), NrsnnError> {
    let mut pipeline_config = PipelineConfig::mnist_full();
    pipeline_config.dataset = pipeline_config.dataset.with_samples(384, 96);
    println!("training MLP on {} ...", pipeline_config.dataset.name);
    let pipeline = TrainedPipeline::build(&pipeline_config)?;

    let sweep = SweepConfig {
        time_steps: 96,
        eval_samples: 48,
        seed: 2021,
    };
    let mut codings = CodingKind::baselines();
    codings.push(CodingKind::Ttas(5));
    let levels = [0.0, 0.2, 0.5, 0.8];
    let cells = codings.len() * levels.len() * sweep.eval_samples;

    let run = |parallel: ParallelConfig| -> Result<(Vec<SweepPoint>, f64), NrsnnError> {
        let start = Instant::now();
        let points = DeletionSweep::new(&codings, &levels)
            .weight_scaling(true)
            .config(sweep)
            .parallel(parallel)
            .run(&pipeline)?;
        Ok((points, start.elapsed().as_secs_f64()))
    };

    let (serial_points, serial_secs) = run(ParallelConfig::serial())?;
    let (parallel_points, parallel_secs) = run(ParallelConfig::with_threads(4))?;
    let (auto_points, auto_secs) = run(ParallelConfig::auto())?;

    assert_eq!(serial_points, parallel_points, "4-thread run diverged");
    assert_eq!(serial_points, auto_points, "auto run diverged");

    println!(
        "\n{cells} grid cells (5 codings x 4 deletion levels x {} samples):",
        sweep.eval_samples
    );
    println!(
        "  serial (1 thread) : {serial_secs:>7.2}s  ({:>8.1} cells/s)",
        cells as f64 / serial_secs
    );
    println!(
        "  4 threads         : {parallel_secs:>7.2}s  ({:>8.1} cells/s, {:.2}x)",
        cells as f64 / parallel_secs,
        serial_secs / parallel_secs
    );
    println!(
        "  auto ({} threads)  : {auto_secs:>7.2}s  ({:>8.1} cells/s, {:.2}x)",
        ParallelConfig::auto().effective_threads(),
        cells as f64 / auto_secs,
        serial_secs / auto_secs
    );
    println!("  all three runs produced bit-identical sweep points\n");

    println!("{}", format_sweep_table(&serial_points, "Deletion p"));
    Ok(())
}
