//! Reproduces §IV/§V figures about the proposed methods:
//!
//! * Fig. 4 — weight scaling plus TTAS(t_a) under deletion noise,
//! * Fig. 6 — TTAS(t_a) versus TTFS under jitter noise,
//! * Fig. 7 — all codings ± WS compared with TTAS+WS under deletion,
//! * Fig. 8 — all codings compared with TTAS(10) under jitter.
//!
//! Run with:
//! ```text
//! cargo run --release --example robust_ttas_pipeline
//! ```

use nrsnn::prelude::*;

fn main() -> Result<(), NrsnnError> {
    let pipeline_config = PipelineConfig::cifar10_full();
    println!("training CNN on {} ...", pipeline_config.dataset.name);
    let pipeline = TrainedPipeline::build(&pipeline_config)?;
    println!(
        "DNN test accuracy: {:.1}%\n",
        pipeline.dnn_test_accuracy() * 100.0
    );

    let sweep = SweepConfig {
        time_steps: 128,
        eval_samples: 64,
        seed: 77,
    };
    let deletion_levels = paper_deletion_probabilities();
    let jitter_levels = paper_jitter_intensities();

    // ---- Fig. 4: weight scaling and TTAS(t_a) under deletion ----
    let mut fig4_codings = CodingKind::baselines();
    for duration in [1u32, 2, 3, 4, 5] {
        fig4_codings.push(CodingKind::Ttas(duration));
    }
    let fig4 = deletion_sweep(&pipeline, &fig4_codings, &deletion_levels, true, &sweep)?;
    println!("Fig. 4 — weight scaling (WS) and TTAS under spike deletion:");
    println!("{}", format_sweep_table(&fig4, "Deletion p"));

    // ---- Fig. 6: TTFS vs TTAS under jitter ----
    let fig6_codings = vec![
        CodingKind::Ttfs,
        CodingKind::Ttas(1),
        CodingKind::Ttas(2),
        CodingKind::Ttas(3),
        CodingKind::Ttas(4),
        CodingKind::Ttas(5),
        CodingKind::Ttas(10),
    ];
    let fig6 = jitter_sweep(&pipeline, &fig6_codings, &jitter_levels, &sweep)?;
    println!("Fig. 6 — TTFS vs TTAS under spike jitter:");
    println!("{}", format_sweep_table(&fig6, "Jitter sigma"));

    // ---- Fig. 7: comparison under deletion ----
    let baselines = CodingKind::baselines();
    let unscaled = deletion_sweep(&pipeline, &baselines, &deletion_levels, false, &sweep)?;
    let mut scaled_codings = baselines.clone();
    scaled_codings.push(CodingKind::Ttas(5));
    let scaled = deletion_sweep(&pipeline, &scaled_codings, &deletion_levels, true, &sweep)?;
    println!("Fig. 7 — comparison for spike deletion (without WS):");
    println!("{}", format_sweep_table(&unscaled, "Deletion p"));
    println!("Fig. 7 — comparison for spike deletion (with WS, incl. TTAS(5)+WS):");
    println!("{}", format_sweep_table(&scaled, "Deletion p"));

    // ---- Fig. 8: comparison under jitter ----
    let mut fig8_codings = CodingKind::baselines();
    fig8_codings.push(CodingKind::Ttas(10));
    let fig8 = jitter_sweep(&pipeline, &fig8_codings, &jitter_levels, &sweep)?;
    println!("Fig. 8 — comparison for spike jitter (incl. TTAS(10)):");
    println!("{}", format_sweep_table(&fig8, "Jitter sigma"));

    Ok(())
}
